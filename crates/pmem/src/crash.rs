//! Crash simulation: enumerate every post-crash persistent-memory image.
//!
//! The paper argues (§3, §5.7) that a crash at *any* point during a FAST or
//! FAIR modification leaves the tree in a state that readers tolerate and a
//! later writer repairs. Their evidence is a concurrency experiment standing
//! in for a physical power-off test. We can do better in simulation: record
//! every 8-byte store and every cache-line flush, then *replay* the log up to
//! an arbitrary crash point.
//!
//! # The crash model
//!
//! Under TSO, stores reach the cache in program order, and a dirty cache line
//! can be written back (evicted) at any moment, independently of other lines.
//! Therefore, for each line, the set of persisted states reachable at a crash
//! is exactly: *the last explicitly flushed content, plus some prefix of the
//! unflushed stores to that line*. Cross-line ordering is only guaranteed by
//! explicit flush + fence, which the log captures as [`Event::FlushLine`].
//!
//! [`CrashLog::replay`] materializes the persistent image for a crash at
//! event index `cut`, calling a chooser for every still-dirty line to pick
//! how many of its pending stores were evicted. Exhaustive tests sweep both
//! `cut` and the per-line choices; see `tests/crash_recovery.rs` at the
//! workspace root.

use parking_lot::Mutex;

use crate::pool::{PmOffset, CACHE_LINE};

/// One entry in the crash log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An 8-byte store of `val` at pool offset `off`.
    Store {
        /// Pool offset (8-byte aligned).
        off: PmOffset,
        /// Value stored.
        val: u64,
    },
    /// A cache-line flush of the line starting at `line`.
    FlushLine {
        /// Line-aligned pool offset.
        line: u64,
    },
}

/// Recorded sequence of stores and flushes for crash replay.
#[derive(Debug, Default)]
pub struct CrashLog {
    events: Mutex<Vec<Event>>,
    /// Baseline persistent image; `None` means all-zeros.
    baseline: Mutex<Option<Vec<u8>>>,
}

impl CrashLog {
    /// Creates an empty log with an all-zero baseline.
    pub fn new() -> CrashLog {
        CrashLog::default()
    }

    /// Appends an event.
    pub fn record(&self, ev: Event) {
        self.events.lock().push(ev);
    }

    /// Runs `f` with the event list locked — lets the pool make a
    /// store-plus-dirty-bit (or flush-elision-plus-event) decision atomic
    /// with respect to concurrent loggers, so the replayed event order can
    /// never claim durability the dirty-line tracking denied.
    pub(crate) fn with_events<R>(&self, f: impl FnOnce(&mut Vec<Event>) -> R) -> R {
        f(&mut self.events.lock())
    }

    /// Number of events recorded so far. Crash points range over
    /// `0..=len()`.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Clears the log and makes `image` the new baseline: everything up to
    /// this moment is considered durable.
    ///
    /// Use after pre-loading a structure, so crash points enumerate only the
    /// operations under test.
    pub fn set_baseline(&self, image: Vec<u8>) {
        *self.baseline.lock() = Some(image);
        self.events.lock().clear();
    }

    /// Returns a copy of the events (for diagnostics / shrinking).
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Replays events `[0, cut)` and materializes a persistent image of
    /// `pool_size` bytes.
    ///
    /// For every cache line left dirty at the crash point, `choose(line, n)`
    /// picks how many of its `n` pending stores were evicted before the
    /// crash (`0..=n`); returns are clamped to `n`.
    ///
    /// # Panics
    ///
    /// Panics if `cut` exceeds the number of recorded events.
    pub fn replay(
        &self,
        pool_size: usize,
        cut: usize,
        mut choose: impl FnMut(u64, usize) -> usize,
    ) -> Vec<u8> {
        let events = self.events.lock();
        assert!(
            cut <= events.len(),
            "crash point {cut} beyond log length {}",
            events.len()
        );
        let baseline = self.baseline.lock();
        let mut persistent = match &*baseline {
            Some(img) => {
                let mut v = img.clone();
                v.resize(pool_size, 0);
                v
            }
            None => vec![0u8; pool_size],
        };
        let mut volatile = persistent.clone();
        // line offset -> indices of pending (unflushed) stores, in order.
        let mut pending: std::collections::BTreeMap<u64, Vec<(PmOffset, u64)>> =
            std::collections::BTreeMap::new();

        let line_of = |off: PmOffset| off & !(CACHE_LINE as u64 - 1);
        let apply = |img: &mut [u8], off: PmOffset, val: u64| {
            img[off as usize..off as usize + 8].copy_from_slice(&val.to_le_bytes());
        };

        for ev in events.iter().take(cut) {
            match *ev {
                Event::Store { off, val } => {
                    apply(&mut volatile, off, val);
                    pending.entry(line_of(off)).or_default().push((off, val));
                }
                Event::FlushLine { line } => {
                    if pending.remove(&line).is_some() {
                        let s = line as usize;
                        let e = (s + CACHE_LINE).min(pool_size);
                        persistent[s..e].copy_from_slice(&volatile[s..e]);
                    }
                    // Flushing a clean line is a no-op.
                }
            }
        }

        // Crash: each dirty line independently persisted some prefix of its
        // pending stores.
        for (line, stores) in pending {
            let k = choose(line, stores.len()).min(stores.len());
            for &(off, val) in stores.iter().take(k) {
                apply(&mut persistent, off, val);
            }
        }
        persistent
    }
}

/// The crash-sweep seed injected through the environment: `FF_CRASH_SEED`
/// parsed as a `u64`, or 0 when unset or unparsable.
///
/// CI's crash-matrix job runs every `crash_*` test target once per seed,
/// so the pseudo-random eviction choices (and anything else a sweep
/// derives from this) cover a different slice of the reachable crash
/// states on each matrix leg instead of re-testing one fixed slice.
/// Sweeps stay fully deterministic *per seed*.
pub fn env_seed() -> u64 {
    std::env::var("FF_CRASH_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Ready-made eviction policies for [`crate::Pool::crash_image`].
#[derive(Debug, Clone)]
pub enum Eviction {
    /// No dirty line was evicted: only explicitly flushed data survives.
    /// The *minimal* persisted state.
    None,
    /// Every dirty line was fully evicted just before the crash: the crash
    /// image equals the volatile image. The *maximal* persisted state.
    All,
    /// Each dirty line independently persists a pseudo-random prefix of its
    /// pending stores, derived from the seed and the line address.
    Random(
        /// Seed for the per-line prefix choice.
        u64,
    ),
}

impl Eviction {
    /// Pseudo-random eviction whose seed mixes `salt` (typically the cut
    /// index, so adjacent crash points draw different prefixes) with the
    /// environment-injected sweep seed ([`env_seed`]) — what every crash
    /// sweep in this repository uses so the CI seed matrix actually
    /// varies the explored evictions.
    pub fn random_with_env(salt: u64) -> Eviction {
        // SplitMix64 the env seed so seed 0 and seed 1 diverge everywhere,
        // not just in the low bits.
        let mut z = env_seed().wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Eviction::Random((z ^ (z >> 31)).wrapping_add(salt))
    }

    /// Chooses the evicted-store prefix length for a dirty line with `n`
    /// pending stores.
    pub fn choose(&mut self, line: u64, n: usize) -> usize {
        match self {
            Eviction::None => 0,
            Eviction::All => n,
            Eviction::Random(seed) => {
                // SplitMix64 over (seed, line): deterministic per line.
                let mut z = seed.wrapping_add(line).wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                (z as usize) % (n + 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{Pool, PoolConfig};

    fn crash_pool() -> Pool {
        Pool::new(PoolConfig::new().size(1 << 16).crash_log(true)).unwrap()
    }

    fn read_u64(img: &[u8], off: u64) -> u64 {
        u64::from_le_bytes(img[off as usize..off as usize + 8].try_into().unwrap())
    }

    #[test]
    fn unflushed_store_lost_without_eviction() {
        let p = crash_pool();
        let off = p.alloc(64, 64).unwrap();
        p.store_u64(off, 99);
        let cut = p.crash_log().unwrap().len();
        let img = p.crash_image(cut, Eviction::None);
        assert_eq!(read_u64(&img, off), 0);
        let img = p.crash_image(cut, Eviction::All);
        assert_eq!(read_u64(&img, off), 99);
    }

    #[test]
    fn flushed_store_survives() {
        let p = crash_pool();
        let off = p.alloc(64, 64).unwrap();
        p.store_u64(off, 1234);
        p.persist(off, 8);
        let cut = p.crash_log().unwrap().len();
        let img = p.crash_image(cut, Eviction::None);
        assert_eq!(read_u64(&img, off), 1234);
    }

    #[test]
    fn prefix_order_respected_within_line() {
        let p = crash_pool();
        let off = p.alloc(64, 64).unwrap();
        p.store_u64(off, 1); // store A
        p.store_u64(off + 8, 2); // store B
        let cut = p.crash_log().unwrap().len();
        // Evict exactly one store: must be A (prefix), never B alone.
        let img = p.crash_image_with(cut, |_line, _n| 1);
        assert_eq!(read_u64(&img, off), 1);
        assert_eq!(read_u64(&img, off + 8), 0);
    }

    #[test]
    fn lines_evict_independently() {
        let p = crash_pool();
        let a = p.alloc(64, 64).unwrap();
        let b = p.alloc(64, 64).unwrap();
        assert_ne!(a & !63, b & !63);
        p.store_u64(a, 11);
        p.store_u64(b, 22);
        let cut = p.crash_log().unwrap().len();
        let img = p.crash_image_with(cut, |line, n| if line == (b & !63) { n } else { 0 });
        assert_eq!(read_u64(&img, a), 0);
        assert_eq!(read_u64(&img, b), 22);
    }

    #[test]
    fn crash_at_intermediate_cut() {
        let p = crash_pool();
        let off = p.alloc(64, 64).unwrap();
        p.store_u64(off, 1);
        p.persist(off, 8); // events: store, flush, (fence not logged)
        p.store_u64(off, 2);
        // Crash after the first persist but before the second store.
        let img = p.crash_image(2, Eviction::All);
        assert_eq!(read_u64(&img, off), 1);
    }

    #[test]
    fn rewritten_line_after_flush_keeps_flushed_content() {
        let p = crash_pool();
        let off = p.alloc(64, 64).unwrap();
        p.store_u64(off, 1);
        p.persist(off, 8);
        p.store_u64(off, 2); // dirty again, never flushed
        let cut = p.crash_log().unwrap().len();
        let img = p.crash_image(cut, Eviction::None);
        assert_eq!(read_u64(&img, off), 1);
        let img = p.crash_image(cut, Eviction::All);
        assert_eq!(read_u64(&img, off), 2);
    }

    #[test]
    fn baseline_becomes_durable() {
        let p = crash_pool();
        let off = p.alloc(64, 64).unwrap();
        p.store_u64(off, 42); // never flushed
        let img = p.volatile_image();
        p.crash_log().unwrap().set_baseline(img);
        // New op on a clean slate.
        p.store_u64(off + 8, 43);
        let img = p.crash_image(0, Eviction::None);
        assert_eq!(read_u64(&img, off), 42); // baseline survives
        assert_eq!(read_u64(&img, off + 8), 0); // new store does not
    }

    #[test]
    fn reopen_from_crash_image() {
        let p = crash_pool();
        let off = p.alloc(64, 64).unwrap();
        p.store_u64(off, 5);
        p.persist(off, 8);
        p.set_root(off);
        let cut = p.crash_log().unwrap().len();
        let img = p.crash_image(cut, Eviction::None);
        let p2 = Pool::from_image(&img, PoolConfig::new().size(1 << 16)).unwrap();
        assert_eq!(p2.root(), off);
        assert_eq!(p2.load_u64(off), 5);
    }

    #[test]
    fn eviction_random_is_deterministic() {
        let mut a = Eviction::Random(7);
        let mut b = Eviction::Random(7);
        for line in [0u64, 64, 128, 4096] {
            assert_eq!(a.choose(line, 5), b.choose(line, 5));
        }
    }

    #[test]
    fn env_seeded_eviction_is_deterministic_per_seed() {
        // Whatever FF_CRASH_SEED is (set or not), the derived policy is a
        // pure function of (env seed, salt).
        let mut a = Eviction::random_with_env(3);
        let mut b = Eviction::random_with_env(3);
        for line in [0u64, 64, 192] {
            assert_eq!(a.choose(line, 4), b.choose(line, 4));
        }
        // Different salts give different policies.
        let (Eviction::Random(x), Eviction::Random(y)) =
            (Eviction::random_with_env(1), Eviction::random_with_env(2))
        else {
            panic!("random_with_env must yield Eviction::Random");
        };
        assert_ne!(x, y);
    }

    #[test]
    #[should_panic(expected = "beyond log length")]
    fn cut_beyond_log_panics() {
        let p = crash_pool();
        p.crash_image(10, Eviction::None);
    }
}
