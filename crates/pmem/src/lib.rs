//! Byte-addressable persistent-memory emulation substrate.
//!
//! This crate stands in for the hardware and the Quartz latency emulator used
//! in the FAST+FAIR paper (Hwang et al., FAST'18). It provides:
//!
//! * [`Pool`] — a single, 64-byte-aligned allocation representing a PM
//!   device. All persistent data lives at byte offsets ([`PmOffset`]) inside
//!   the pool; offset `0` is the NULL pointer. Every 8-byte slot is accessed
//!   through atomic views so stores are genuinely failure-atomic at the
//!   8-byte granularity the paper assumes.
//! * [`LatencyProfile`] — Quartz-style latency injection. Each `clflush`
//!   costs the configured write latency; each *serial* (dependent) cache miss
//!   costs the read latency; adjacent-line scans are charged as *parallel*
//!   misses divided by a memory-level-parallelism factor, mirroring how the
//!   paper explains why linear search beats binary search (§5.2) and why
//!   B+-trees degrade more slowly than radix trees with rising read latency
//!   (§5.4).
//! * [`FenceMode`] — TSO vs. non-TSO store ordering. On TSO (x86) the
//!   store-store fences FAST relies on are free; in [`FenceMode::NonTso`]
//!   each `fence_if_not_tso` costs a configurable `dmb` delay, which is what
//!   Fig. 5(d) measures.
//! * [`stats`] — thread-local counters for flushes, fences, serial misses and
//!   per-phase timings, used to regenerate the Fig. 5(a) breakdown and the
//!   flush-count claims in the text (e.g. wB+-tree calls 1.7× the flushes of
//!   FAST+FAIR).
//! * [`crash`] — a store/flush event log plus replay machinery that can
//!   materialize *every* reachable post-crash PM image: flushed lines are
//!   durable, and each still-dirty line retains an arbitrary prefix of its
//!   unflushed 8-byte stores (exactly the states reachable under TSO with
//!   independent cache-line eviction). This substitutes for the paper's
//!   physical power-off test and is strictly more adversarial.
//!
//! # Example
//!
//! ```
//! use pmem::{Pool, PoolConfig};
//!
//! let pool = Pool::new(PoolConfig::default().size(1 << 20))?;
//! let off = pool.alloc(64, 64)?;
//! pool.store_u64(off, 42);
//! pool.persist(off, 8); // clflush + fence
//! assert_eq!(pool.load_u64(off), 42);
//! # Ok::<(), pmem::PmError>(())
//! ```

#![warn(missing_docs)]

pub mod crash;
mod latency;
mod pool;
pub mod stats;

pub use latency::{spin_ns, FenceMode, LatencyProfile};
pub use pool::{
    FlushScope, PmError, PmOffset, Pool, PoolConfig, CACHE_LINE, NULL_OFFSET, POOL_HEADER_SIZE,
};
