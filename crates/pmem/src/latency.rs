//! Quartz-style latency injection and memory-ordering cost model.
//!
//! The paper evaluates on a DRAM machine with the Quartz emulator injecting
//! stall cycles so that loads and cache-line flushes appear to take the
//! latency of persistent memory. We reproduce the same *application-perceived*
//! model in software:
//!
//! * every explicit `clflush` stalls for the configured **write latency**;
//! * every *serial* (dependent, pointer-chasing) cache miss stalls for the
//!   **read latency**;
//! * a batch of adjacent-line reads (a linear scan of a node) is charged as
//!   *parallel* misses: `ceil(lines / mlp) * read_ns`, because the hardware
//!   prefetcher and memory-level parallelism overlap them. Quartz does the
//!   equivalent by counting memory stall cycles per LOAD (§5.4 of the paper).

use std::time::Instant;

/// Volatile store-ordering model of the target architecture.
///
/// FAST's dependent 8-byte stores need store-store ordering. On total-store-
/// ordering machines (x86) that ordering is free; on non-TSO machines (ARM)
/// every dependent pair needs an explicit `dmb`-class barrier, which Fig. 5(d)
/// shows dominating at DRAM-like write latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FenceMode {
    /// Total store ordering: `fence_if_not_tso` is free (compiler fence only).
    #[default]
    Tso,
    /// Weak ordering: every `fence_if_not_tso` costs `dmb_ns` and is counted.
    NonTso {
        /// Emulated cost of one `dmb ish` barrier in nanoseconds.
        dmb_ns: u32,
    },
}

/// Emulated persistent-memory latency profile for a [`crate::Pool`].
///
/// `read_ns`/`write_ns` of 0 model DRAM (no injection). The defaults mirror
/// the paper's baseline configuration of equal 300 ns read/write latency used
/// in Figures 4 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyProfile {
    /// Latency of one serial (dependent) cache miss, in nanoseconds.
    pub read_ns: u32,
    /// Latency of one cache-line flush to PM, in nanoseconds.
    pub write_ns: u32,
    /// Memory-level-parallelism factor: how many adjacent-line misses the
    /// memory system overlaps. The paper attributes the linear-search win in
    /// §5.2 to exactly this effect.
    pub mlp: u32,
    /// Store-ordering model.
    pub fence: FenceMode,
}

impl LatencyProfile {
    /// DRAM profile: no injected latency, TSO ordering.
    pub const fn dram() -> Self {
        LatencyProfile {
            read_ns: 0,
            write_ns: 0,
            mlp: 4,
            fence: FenceMode::Tso,
        }
    }

    /// Symmetric PM profile with equal read and write latency.
    pub const fn symmetric(ns: u32) -> Self {
        LatencyProfile {
            read_ns: ns,
            write_ns: ns,
            mlp: 4,
            fence: FenceMode::Tso,
        }
    }

    /// Profile with distinct read and write latency.
    pub const fn new(read_ns: u32, write_ns: u32) -> Self {
        LatencyProfile {
            read_ns,
            write_ns,
            mlp: 4,
            fence: FenceMode::Tso,
        }
    }

    /// Returns this profile with a different MLP factor.
    pub const fn with_mlp(mut self, mlp: u32) -> Self {
        self.mlp = if mlp == 0 { 1 } else { mlp };
        self
    }

    /// Returns this profile with a different fence mode.
    pub const fn with_fence(mut self, fence: FenceMode) -> Self {
        self.fence = fence;
        self
    }
}

impl Default for LatencyProfile {
    fn default() -> Self {
        LatencyProfile::dram()
    }
}

/// Busy-waits for approximately `ns` nanoseconds.
///
/// Used to inject emulated PM latency; a zero argument returns immediately
/// so the DRAM profile adds no overhead beyond one branch.
#[inline]
pub fn spin_ns(ns: u32) {
    if ns == 0 {
        return;
    }
    let start = Instant::now();
    let target = u128::from(ns);
    while start.elapsed().as_nanos() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_profile_is_free() {
        let p = LatencyProfile::dram();
        assert_eq!(p.read_ns, 0);
        assert_eq!(p.write_ns, 0);
        assert_eq!(p.fence, FenceMode::Tso);
    }

    #[test]
    fn symmetric_sets_both() {
        let p = LatencyProfile::symmetric(300);
        assert_eq!(p.read_ns, 300);
        assert_eq!(p.write_ns, 300);
    }

    #[test]
    fn mlp_never_zero() {
        let p = LatencyProfile::dram().with_mlp(0);
        assert_eq!(p.mlp, 1);
    }

    #[test]
    fn spin_roughly_waits() {
        let t0 = Instant::now();
        spin_ns(200_000); // 200 us
        assert!(t0.elapsed().as_nanos() >= 200_000);
    }

    #[test]
    fn spin_zero_is_noop() {
        let t0 = Instant::now();
        for _ in 0..1_000_000 {
            spin_ns(0);
        }
        // A million no-op calls should take well under 100ms.
        assert!(t0.elapsed().as_millis() < 1000);
    }
}
