//! The order-preserving key codec: arbitrary byte strings → `u64` chunks.
//!
//! A byte key is cut into 7-byte groups, each packed big-endian into the
//! high 56 bits of a `u64`; the low byte is a *discriminant* that encodes
//! whether the chunk is the last one and, if so, how many bytes of the
//! group are real (the rest is zero padding):
//!
//! ```text
//! bits 63..8    bits 7..0
//! ┌─────────────────────────┬──────────────────────────────────────┐
//! │ up to 7 key bytes, BE,  │ 1 + len   (final chunk, len ∈ 0..=7) │
//! │ zero-padded on the right│ 9         (continuation: more follow) │
//! └─────────────────────────┴──────────────────────────────────────┘
//! ```
//!
//! Because the payload bytes occupy the most significant bits and the
//! discriminant of a final chunk (1..=8) is smaller than the continuation
//! marker (9), comparing chunk sequences lexicographically as `u64`s gives
//! exactly the lexicographic order of the original byte strings, and the
//! mapping is injective — the two properties
//! `crates/varkey/tests/codec_props.rs` pins down by property testing.
//!
//! Keys of at most [`MAX_INLINE`] bytes fit in a *single* final chunk, so
//! they live directly in the underlying `u64` index ("inline"). Longer
//! keys contribute only their *first* chunk as the index key; the full key
//! bytes move to an overflow record (see [`crate::VarKeyStore`]). The
//! first chunk is a monotone function of the key, so index order still
//! follows key order; keys sharing a first chunk are ordered by the
//! overflow chain.

/// Longest key (in bytes) that encodes into a single chunk and therefore
/// needs no overflow record.
///
/// ```
/// assert_eq!(varkey::codec::MAX_INLINE, 7);
/// assert_eq!(varkey::codec::encode(&[0u8; 7]).len(), 1);
/// assert_eq!(varkey::codec::encode(&[0u8; 8]).len(), 2);
/// ```
pub const MAX_INLINE: usize = 7;

/// Discriminant marking a chunk with more chunks after it. Final chunks
/// use `1 + len` (1..=8), so `CONT` must exceed 8 for prefix order.
const CONT: u8 = 9;

fn pack(group: &[u8], disc: u8) -> u64 {
    debug_assert!(group.len() <= MAX_INLINE);
    let mut bytes = [0u8; 8];
    bytes[..group.len()].copy_from_slice(group);
    bytes[7] = disc;
    u64::from_be_bytes(bytes)
}

/// Encodes a byte key into its full chunk sequence.
///
/// Comparing two encodings lexicographically (as `&[u64]`) is the same as
/// comparing the keys lexicographically, and no two keys share an
/// encoding:
///
/// ```
/// use varkey::codec::encode;
///
/// assert!(encode(b"app") < encode(b"apple"));
/// assert!(encode(b"apple") < encode(b"applesauce")); // crosses a chunk
/// assert!(encode(b"") < encode(b"\0"));              // empty sorts first
/// assert_ne!(encode(b"a"), encode(b"a\0"));          // injective
/// ```
pub fn encode(key: &[u8]) -> Vec<u64> {
    let mut out = Vec::with_capacity(key.len() / MAX_INLINE + 1);
    let mut rest = key;
    while rest.len() > MAX_INLINE {
        out.push(pack(&rest[..MAX_INLINE], CONT));
        rest = &rest[MAX_INLINE..];
    }
    out.push(pack(rest, 1 + rest.len() as u8));
    out
}

/// The first chunk of a key's encoding — the `u64` the key occupies (or
/// shares, for long keys) in the underlying index.
///
/// Monotone: `a <= b` (bytes) implies `first_chunk(a) <= first_chunk(b)`,
/// and never 0 or `u64::MAX`, so it is always a legal index key.
///
/// ```
/// use varkey::codec::{encode, first_chunk};
///
/// assert_eq!(first_chunk(b"pay"), encode(b"pay")[0]);
/// assert!(first_chunk(b"pay") < first_chunk(b"payment"));
/// assert_ne!(first_chunk(b""), 0);
/// ```
pub fn first_chunk(key: &[u8]) -> u64 {
    if key.len() <= MAX_INLINE {
        pack(key, 1 + key.len() as u8)
    } else {
        pack(&key[..MAX_INLINE], CONT)
    }
}

/// True if `chunk` is a final chunk, i.e. it inlines a whole key of at
/// most [`MAX_INLINE`] bytes (rather than heading an overflow chain).
///
/// ```
/// use varkey::codec::{first_chunk, is_inline};
///
/// assert!(is_inline(first_chunk(b"short")));
/// assert!(!is_inline(first_chunk(b"much longer key")));
/// ```
pub fn is_inline(chunk: u64) -> bool {
    (chunk as u8) < CONT
}

/// Recovers the key bytes of an inline (single final chunk) encoding;
/// `None` if `chunk` is a continuation chunk or malformed.
///
/// ```
/// use varkey::codec::{decode_inline, first_chunk};
///
/// assert_eq!(decode_inline(first_chunk(b"kv")), Some(b"kv".to_vec()));
/// assert_eq!(decode_inline(first_chunk(b"long-enough-key")), None);
/// assert_eq!(decode_inline(0), None); // disc 0 is unused
/// ```
pub fn decode_inline(chunk: u64) -> Option<Vec<u8>> {
    let disc = chunk as u8;
    if !(1..=1 + MAX_INLINE as u8).contains(&disc) {
        return None;
    }
    let len = (disc - 1) as usize;
    let bytes = chunk.to_be_bytes();
    // Reject non-canonical padding so decode ∘ encode is the identity and
    // nothing else decodes.
    if bytes[len..MAX_INLINE].iter().any(|&b| b != 0) {
        return None;
    }
    Some(bytes[..len].to_vec())
}

/// A range-partition split point for byte keys: every key `>= prefix`
/// routes to a chunk `>= prefix_bound(prefix)`, and (for prefixes of at
/// most [`MAX_INLINE`] bytes) every key `< prefix` routes strictly below
/// it — so a `shard::Partitioning::Range` over chunks with these bounds
/// partitions the *byte* keyspace at the prefix.
///
/// Longer prefixes still give a valid (merely chunk-granular) bound: the
/// handful of keys sharing the prefix's first 7 bytes land on one side.
///
/// ```
/// use varkey::codec::{first_chunk, prefix_bound};
///
/// let split = prefix_bound(b"m");
/// assert!(first_chunk(b"lemur") < split);
/// assert!(first_chunk(b"m") >= split);
/// assert!(first_chunk(b"mango-smoothie") >= split);
/// ```
pub fn prefix_bound(prefix: &[u8]) -> u64 {
    first_chunk(prefix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_key_is_nonzero_single_chunk() {
        assert_eq!(encode(b""), vec![1]);
        assert_eq!(first_chunk(b""), 1);
        assert_eq!(decode_inline(1), Some(Vec::new()));
    }

    #[test]
    fn chunk_boundaries() {
        assert_eq!(encode(&[0xab; 7]).len(), 1);
        let two = encode(&[0xab; 8]);
        assert_eq!(two.len(), 2);
        assert!(!is_inline(two[0]));
        assert!(is_inline(two[1]));
        assert_eq!(encode(&[0xab; 14]).len(), 2);
        assert_eq!(encode(&[0xab; 15]).len(), 3);
    }

    #[test]
    fn zero_padding_does_not_collide() {
        // "a" vs "a\0" vs "a\0\0": same payload bytes, different disc.
        let a = encode(b"a");
        let a0 = encode(b"a\0");
        let a00 = encode(b"a\0\0");
        assert!(a < a0 && a0 < a00);
        assert_ne!(a, a0);
        // A 7-byte key vs the same bytes continuing.
        assert!(first_chunk(b"abcdefg") < first_chunk(b"abcdefgh"));
    }

    #[test]
    fn chunks_never_reserved_patterns() {
        for key in [&b""[..], b"\0", &[0xff; 7], &[0xff; 20], b"x"] {
            for &c in &encode(key) {
                assert_ne!(c, 0, "key {key:?}");
                assert_ne!(c, u64::MAX, "key {key:?}");
            }
        }
    }

    #[test]
    fn decode_inline_rejects_noncanonical() {
        // disc says 1 byte, but padding bytes are nonzero.
        let bad = pack(b"ab", 2);
        assert_eq!(decode_inline(bad), None);
        assert_eq!(decode_inline(pack(b"ab", 3)), Some(b"ab".to_vec()));
        assert_eq!(decode_inline(pack(b"abcdefg", CONT)), None);
    }

    #[test]
    fn exhaustive_order_small_alphabet() {
        // All keys up to length 3 over {0, 1, 0x7f, 0xff}: encoding order
        // must equal byte order, pairwise.
        let alphabet = [0u8, 1, 0x7f, 0xff];
        let mut keys: Vec<Vec<u8>> = vec![Vec::new()];
        for len in 1..=3usize {
            let mut level = vec![Vec::new()];
            for _ in 0..len {
                level = level
                    .into_iter()
                    .flat_map(|k| {
                        alphabet.iter().map(move |&b| {
                            let mut k2 = k.clone();
                            k2.push(b);
                            k2
                        })
                    })
                    .collect();
            }
            keys.extend(level);
        }
        for a in &keys {
            for b in &keys {
                assert_eq!(
                    encode(a).cmp(&encode(b)),
                    a.cmp(b),
                    "order mismatch: {a:?} vs {b:?}"
                );
            }
        }
    }
}
