//! # Variable-length byte-slice keys over any `u64`-keyed index
//!
//! The paper fixes keys at 8 bytes so every FAST shift stays one
//! failure-atomic store; a production index must also serve string keys
//! (TPC-C keys customers by last name). This crate closes that gap
//! *without touching any of the six index implementations*: a
//! [`VarKeyStore`] adapts arbitrary `&[u8]` keys onto an inner
//! [`PmIndex`] through the order-preserving [`codec`] — big-endian 7-byte
//! chunks with a continuation/length discriminant, so encoded `u64` order
//! equals lexicographic byte order.
//!
//! * Keys of at most [`codec::MAX_INLINE`] bytes live *inline*: the whole
//!   key is the `u64` index key and the caller's value is the index
//!   value. Every operation is exactly one operation on the inner index.
//! * Longer keys share their first chunk as the index key and move their
//!   bytes to **overflow records** allocated from a [`pmem::Pool`].
//!   Records with the same first chunk form a linked chain sorted by key;
//!   every chain mutation is committed by a *single failure-atomic 8-byte
//!   store* (a `next`-pointer or value-slot flip, or an inner-index
//!   update), so a crash exposes the old chain or the new one — never a
//!   torn mixture. `crates/varkey/tests/crash_overflow.rs` sweeps every
//!   crash point to prove it.
//!
//! Because the adapter implements [`VarKeyIndex`] — a byte-keyed mirror
//! of `PmIndex` with upsert returns, a streaming [`ByteCursor`] and
//! sorted [`VarKeyIndex::bulk_load`] — and because the inner index is
//! *any* `PmIndex`, it composes transparently with `shard::ShardedStore`:
//! range-partition the inner router by [`codec::prefix_bound`] split
//! points and the byte keyspace is partitioned at those prefixes.
//!
//! ```
//! use std::sync::Arc;
//! use varkey::{VarKeyIndex, VarKeyStore};
//!
//! let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
//! let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
//! let store = VarKeyStore::new(tree, pool);
//!
//! store.insert(b"customer:0001:BARBARBAR", 41)?; // overflow chain
//! store.insert(b"kv", 42)?;                      // inline
//! assert_eq!(store.get(b"customer:0001:BARBARBAR"), Some(41));
//!
//! let mut cur = store.cursor();
//! cur.seek(b"customer:");
//! assert_eq!(cur.next(), Some((b"customer:0001:BARBARBAR".to_vec(), 41)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub mod codec;

use std::sync::Arc;

use parking_lot::RwLock;
use pmem::{PmOffset, Pool, NULL_OFFSET};
use pmindex::{check_value, Cursor, IndexError, PmIndex, Value};

/// Overflow record layout (8-byte aligned, sizes in bytes):
/// `[0..8)` next-record offset (0 = end of chain), `[8..16)` value,
/// `[16..24)` key length in the low 56 bits with a 1-byte **suffix
/// fingerprint** in the top byte, `[24..)` key bytes zero-padded to 8.
const REC_NEXT: u64 = 0;
const REC_VALUE: u64 = 8;
const REC_LEN: u64 = 16;
const REC_KEY: u64 = 24;

/// Low 56 bits of the `REC_LEN` word hold the key length; the top byte
/// holds the suffix fingerprint (chain members share their first chunk,
/// so only the suffix can distinguish them).
const LEN_MASK: u64 = (1 << 56) - 1;
const FP_SHIFT: u32 = 56;

fn record_size(key_len: usize) -> u64 {
    REC_KEY + (key_len as u64).div_ceil(8) * 8
}

/// 1-byte hash of the key bytes *after* the shared first chunk. All
/// records in one chain agree on their first [`codec::MAX_INLINE`]
/// bytes, so an exact-match chain walk can reject a record with one
/// header byte — a mismatching fingerprint proves inequality without
/// touching any key word.
fn suffix_fp(key: &[u8]) -> u8 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
    for &b in &key[key.len().min(codec::MAX_INLINE)..] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h >> 56) as u8 ^ (h >> 32) as u8
}

/// A streaming, resettable scan over a byte-keyed index — the
/// [`pmindex::Cursor`] contract transplanted to `&[u8]` keys.
///
/// Created by [`VarKeyIndex::cursor`] positioned before the smallest key;
/// [`ByteCursor::next`] yields `(key, value)` pairs in strictly ascending
/// lexicographic order, and [`ByteCursor::seek`] repositions so the next
/// entry is the first with `key >= target`. The concurrency guarantee is
/// inherited from the inner index's cursor: committed-before keys are
/// observed exactly once, in-flight writes may or may not be.
pub trait ByteCursor {
    /// Repositions the cursor: the next call to [`ByteCursor::next`]
    /// returns the first entry with `key >= target` (lexicographically).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"ant", 1)?;
    /// store.insert(b"bee", 2)?;
    /// let mut cur = store.cursor();
    /// cur.seek(b"b");
    /// assert_eq!(cur.next(), Some((b"bee".to_vec(), 2)));
    /// cur.seek(b""); // seeking backwards reuses the cursor
    /// assert_eq!(cur.next(), Some((b"ant".to_vec(), 1)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn seek(&mut self, target: &[u8]);

    /// Returns the next entry in ascending key order, or `None` when the
    /// index is exhausted.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"longer-than-seven-bytes", 7)?;
    /// let mut cur = store.cursor();
    /// assert_eq!(cur.next(), Some((b"longer-than-seven-bytes".to_vec(), 7)));
    /// assert_eq!(cur.next(), None);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn next(&mut self) -> Option<(Vec<u8>, Value)>;

    /// Repositions the cursor for **descending** iteration: the next call
    /// to [`ByteCursor::prev`] returns the last entry with
    /// `key <= target` (lexicographically) — the byte-keyed mirror of
    /// `pmindex::Cursor::seek_for_prev`.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"ant", 1)?;
    /// store.insert(b"bee", 2)?;
    /// let mut cur = store.cursor();
    /// cur.seek_for_prev(b"b"); // between keys: lands on the previous one
    /// assert_eq!(cur.prev(), Some((b"ant".to_vec(), 1)));
    /// cur.seek_for_prev(b"bee"); // exact hit is included
    /// assert_eq!(cur.prev(), Some((b"bee".to_vec(), 2)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn seek_for_prev(&mut self, target: &[u8]);

    /// Returns the next entry in **descending** key order, or `None` when
    /// the scan has moved below the smallest key.
    ///
    /// Must be preceded by [`ByteCursor::seek_for_prev`] — except that a
    /// bare `prev()` on a fresh cursor starts from the largest key
    /// (byte strings have no maximum, so there is no seek target for
    /// "the end"). Interleaving with [`ByteCursor::next`] is not
    /// supported; switch direction by re-seeking.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"short", 1)?;
    /// store.insert(b"longer-than-seven-bytes", 7)?;
    /// let mut cur = store.cursor();
    /// assert_eq!(cur.prev(), Some((b"short".to_vec(), 1)));
    /// assert_eq!(cur.prev(), Some((b"longer-than-seven-bytes".to_vec(), 7)));
    /// assert_eq!(cur.prev(), None);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn prev(&mut self) -> Option<(Vec<u8>, Value)>;
}

impl ByteCursor for Box<dyn ByteCursor + '_> {
    fn seek(&mut self, target: &[u8]) {
        (**self).seek(target)
    }
    fn next(&mut self) -> Option<(Vec<u8>, Value)> {
        (**self).next()
    }
    fn seek_for_prev(&mut self, target: &[u8]) {
        (**self).seek_for_prev(target)
    }
    fn prev(&mut self) -> Option<(Vec<u8>, Value)> {
        (**self).prev()
    }
}

/// One operation of a byte-keyed write batch — the var-key analogue of
/// `pmindex::BatchOp`, consumed by [`VarKeyIndex::apply_batch`]. Both
/// variants are *idempotent redo*: a `Put` upserts, a `Delete` of an
/// absent key is a no-op, so replaying an already-applied batch lands in
/// the same state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ByteBatchOp {
    /// Upsert `key → value`.
    Put(Vec<u8>, Value),
    /// Remove `key` if present.
    Delete(Vec<u8>),
}

/// A byte-keyed ordered index — [`PmIndex`] with `&[u8]` keys.
///
/// The method-by-method contract mirrors `PmIndex` exactly: upserting
/// [`VarKeyIndex::insert`] reports the replaced value, in-place
/// [`VarKeyIndex::update`] never inserts and commits with one
/// failure-atomic 8-byte store, scans stream through [`ByteCursor`]s, and
/// [`VarKeyIndex::bulk_load`] takes a bottom-up path on sorted input.
pub trait VarKeyIndex: Send + Sync {
    /// Inserts `key → value`, replacing (and returning) the previous
    /// value if the key already exists.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// assert_eq!(store.insert(b"alpha-centauri", 1)?, None);
    /// assert_eq!(store.insert(b"alpha-centauri", 2)?, Some(1));
    /// assert!(store.insert(b"x", 0).is_err()); // 0 stays reserved
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`IndexError::ReservedValue`] for values 0 / `u64::MAX`;
    /// [`IndexError::PoolExhausted`] when the overflow pool or the inner
    /// index runs out of memory.
    fn insert(&self, key: &[u8], value: Value) -> Result<Option<Value>, IndexError>;

    /// Updates an *existing* key in place, returning the replaced value;
    /// returns `Ok(None)` without inserting when the key is absent. The
    /// commit is a single failure-atomic 8-byte store (the inner index's
    /// for inline keys, the record's value slot for overflow keys).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"order-line:0007", 70)?;
    /// assert_eq!(store.update(b"order-line:0007", 71)?, Some(70));
    /// assert_eq!(store.update(b"order-line:0008", 80)?, None); // absent
    /// assert_eq!(store.get(b"order-line:0008"), None);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`IndexError::ReservedValue`] for values 0 / `u64::MAX`.
    fn update(&self, key: &[u8], value: Value) -> Result<Option<Value>, IndexError>;

    /// Exact-match lookup.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"needle-in-a-haystack", 3)?;
    /// assert_eq!(store.get(b"needle-in-a-haystack"), Some(3));
    /// assert_eq!(store.get(b"needle"), None); // prefixes are distinct keys
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn get(&self, key: &[u8]) -> Option<Value>;

    /// Removes a key; returns `true` if it was present. Overflow records
    /// are *retired* through the store's epoch domain and return to the
    /// pool's free list online, once every in-flight latch-free lookup
    /// has moved on (counted in `pmem::stats::Snapshot::nodes_limbo` /
    /// `nodes_recycled_online`, and in `nodes_recycled` when the free
    /// lands).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"ephemeral-session-key", 9)?;
    /// assert!(store.remove(b"ephemeral-session-key"));
    /// assert!(!store.remove(b"ephemeral-session-key")); // already gone
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn remove(&self, key: &[u8]) -> bool;

    /// Applies a batch of ops in order, as idempotent redo — the
    /// byte-keyed apply seam a transaction journal replays through (the
    /// `u64` side is `pmindex::PmIndex::apply_batch`). The default
    /// simply loops; an implementation may regroup non-conflicting ops
    /// (disjoint keys commute) to amortize its internal latching.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{ByteBatchOp, VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.apply_batch(&[
    ///     ByteBatchOp::Put(b"customer:0042:name".to_vec(), 7),
    ///     ByteBatchOp::Delete(b"stale-entry".to_vec()), // absent: no-op
    /// ])?;
    /// assert_eq!(store.get(b"customer:0042:name"), Some(7));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first failing op's error; earlier ops stay
    /// applied (each is individually failure-atomic, and redo replay
    /// re-applies them harmlessly).
    fn apply_batch(&self, ops: &[ByteBatchOp]) -> Result<(), IndexError> {
        for op in ops {
            match op {
                ByteBatchOp::Put(k, v) => {
                    self.insert(k, *v)?;
                }
                ByteBatchOp::Delete(k) => {
                    self.remove(k);
                }
            }
        }
        Ok(())
    }

    /// Opens a streaming cursor positioned before the smallest key.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"bb", 2)?;
    /// store.insert(b"aa", 1)?;
    /// let mut cur = store.cursor();
    /// assert_eq!(cur.next(), Some((b"aa".to_vec(), 1)));
    /// assert_eq!(cur.next(), Some((b"bb".to_vec(), 2)));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn cursor(&self) -> Box<dyn ByteCursor + '_>;

    /// Number of live keys; O(n) via the cursor unless overridden.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"one-of-two-entries", 1)?;
    /// store.insert(b"two", 2)?;
    /// assert_eq!(store.len(), 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn len(&self) -> usize {
        let mut c = self.cursor();
        let mut n = 0;
        while c.next().is_some() {
            n += 1;
        }
        n
    }

    /// True if the index holds no keys.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// assert!(store.is_empty());
    /// store.insert(b"now-populated", 1)?;
    /// assert!(!store.is_empty());
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn is_empty(&self) -> bool {
        self.cursor().next().is_none()
    }

    /// Appends every entry with `lo <= key < hi` (lexicographically), in
    /// ascending order, to `out` — the materialized convenience wrapper
    /// over [`VarKeyIndex::cursor`].
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// for (k, v) in [(&b"ant"[..], 1u64), (b"bee-keeper", 2), (b"cat", 3)] {
    ///     store.insert(k, v)?;
    /// }
    /// let mut out = Vec::new();
    /// store.range(b"b", b"c", &mut out);
    /// assert_eq!(out, vec![(b"bee-keeper".to_vec(), 2)]);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn range(&self, lo: &[u8], hi: &[u8], out: &mut Vec<(Vec<u8>, Value)>) {
        if lo >= hi {
            return;
        }
        let mut c = self.cursor();
        c.seek(lo);
        while let Some((k, v)) = c.next() {
            if k.as_slice() >= hi {
                break;
            }
            out.push((k, v));
        }
    }

    /// Loads `items` in bulk, returning the number of *new* keys
    /// (duplicates upsert and are not counted). Implementations may sort
    /// internally; input order does not affect the result.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// let items = vec![(b"a".to_vec(), 1u64), (b"b".to_vec(), 2), (b"a".to_vec(), 3)];
    /// assert_eq!(store.bulk_load(&mut items.into_iter())?, 2);
    /// assert_eq!(store.get(b"a"), Some(3)); // the duplicate upserted
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first insertion failure.
    fn bulk_load(
        &self,
        items: &mut dyn Iterator<Item = (Vec<u8>, Value)>,
    ) -> Result<usize, IndexError> {
        let mut fresh = 0;
        for (k, v) in items {
            if self.insert(&k, v)?.is_none() {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    /// Human-readable name for benchmark tables.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// assert_eq!(store.name(), "VarKey(FAST+FAIR)");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    fn name(&self) -> String;
}

/// Number of chain-latch stripes. Chains are keyed by their first chunk,
/// so with 128 stripes four concurrent writers on distinct chains
/// collide with probability under 5% — and a collision only costs
/// serialization, never correctness.
const CHAIN_STRIPES: usize = 128;

/// Striped per-chain readers-writer latches, keyed by a chain's first
/// chunk. Replaces the original store-wide `RwLock<()>` that serialized
/// ALL long-key mutations: writers on different chains now proceed in
/// parallel, and a cursor drain only shares the stripe of the chain it
/// is walking.
struct ChainLatches {
    stripes: Vec<RwLock<()>>,
}

impl ChainLatches {
    fn new() -> Self {
        ChainLatches {
            stripes: (0..CHAIN_STRIPES).map(|_| RwLock::new(())).collect(),
        }
    }

    /// The latch guarding `chunk`'s chain. First chunks of nearby keys
    /// differ only in low bytes (the codec is order-preserving), so a
    /// Fibonacci multiplicative hash spreads them across stripes.
    fn stripe(&self, chunk: u64) -> &RwLock<()> {
        let h = chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.stripes[(h >> 32) as usize % CHAIN_STRIPES]
    }

    /// Write-locks every stripe (in index order, so two all-stripe
    /// lockers cannot deadlock) — for `bulk_load`, which builds chains
    /// across the whole chunk space at once.
    fn lock_all(&self) -> Vec<parking_lot::RwLockWriteGuard<'_, ()>> {
        self.stripes.iter().map(|s| s.write()).collect()
    }
}

/// Adapts arbitrary byte-slice keys onto a `u64`-keyed [`PmIndex`].
///
/// Short keys (≤ [`codec::MAX_INLINE`] bytes) are stored inline; longer
/// keys go through overflow-record chains in `pool` (see the [crate
/// docs](crate) for the commit discipline). The inner index may be a
/// single tree, a `shard::ShardedStore`, or anything else implementing
/// `PmIndex` — the adapter never looks inside it.
///
/// Chain walks are internally synchronized with striped readers-writer
/// latches keyed by the chain's first chunk (readers share a stripe,
/// chain mutations exclude each other per stripe); inline operations go
/// straight to the inner index's own synchronization.
pub struct VarKeyStore<I> {
    index: I,
    pool: Arc<Pool>,
    /// Guards overflow-chain *cursor drains* (shared) against chain
    /// mutations (exclusive), one latch per stripe of first-chunk values
    /// — writers on different chains proceed in parallel instead of
    /// serializing on one store-wide latch. Point lookups don't take any
    /// stripe: they pin the epoch domain instead (every chain mutation
    /// is a single atomic link flip, so a latch-free walk sees the old
    /// chain or the new one).
    chains: ChainLatches,
    /// Reclamation domain for removed overflow records: a record
    /// unlinked by [`VarKeyIndex::remove`] is retired here and returns
    /// to [`Pool::free`] online, once every pinned lookup has moved on.
    epoch: Arc<epoch::EpochDomain>,
}

impl<I> std::fmt::Debug for VarKeyStore<I> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VarKeyStore").finish_non_exhaustive()
    }
}

impl<I: PmIndex> VarKeyStore<I> {
    /// Wraps `index`, allocating overflow records for long keys from
    /// `pool` (which may be the pool the index itself lives in, or a
    /// dedicated one).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::VarKeyStore;
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool); // same pool for both
    /// # let _ = store;
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn new(index: I, pool: Arc<Pool>) -> Self {
        VarKeyStore {
            index,
            pool,
            chains: ChainLatches::new(),
            epoch: epoch::EpochDomain::new(),
        }
    }

    /// The wrapped `u64`-keyed index — e.g. to re-open a persistent inner
    /// index and re-wrap it after a crash, or to read router statistics
    /// off a sharded inner store.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use pmindex::PmIndex;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"kv", 1)?; // one inline key ...
    /// assert_eq!(store.inner().len(), 1); // ... is one inner entry
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn inner(&self) -> &I {
        &self.index
    }

    /// The pool overflow records are allocated from.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::VarKeyStore;
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, Arc::clone(&pool));
    /// assert!(Arc::ptr_eq(store.pool(), &pool));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// The store's epoch-based reclamation domain — exposed so tests,
    /// tooling and reclamation policies can observe or drive the clock
    /// (e.g. force a deterministic advance/collect between phases).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use varkey::{VarKeyIndex, VarKeyStore};
    ///
    /// let pool = Arc::new(pmem::Pool::new(pmem::PoolConfig::default().size(1 << 20))?);
    /// let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())?;
    /// let store = VarKeyStore::new(tree, pool);
    /// store.insert(b"soon-to-be-removed-key", 1)?;
    /// store.remove(b"soon-to-be-removed-key");
    /// assert_eq!(store.epoch().limbo_len(), 1); // retired, not yet freed
    /// store.epoch().try_advance();
    /// store.epoch().try_advance();
    /// assert_eq!(store.epoch().collect(), 1); // recycled online
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn epoch(&self) -> &Arc<epoch::EpochDomain> {
        &self.epoch
    }

    // ---- overflow records ------------------------------------------------

    fn rec_next(&self, rec: PmOffset) -> PmOffset {
        self.pool.load_u64(rec + REC_NEXT)
    }

    fn rec_value(&self, rec: PmOffset) -> Value {
        self.pool.load_u64(rec + REC_VALUE)
    }

    fn rec_len(&self, rec: PmOffset) -> usize {
        (self.pool.load_u64(rec + REC_LEN) & LEN_MASK) as usize
    }

    /// The record's stored suffix fingerprint (top byte of the length
    /// word) — read together with the length in one 8-byte load.
    fn rec_fp(&self, rec: PmOffset) -> u8 {
        (self.pool.load_u64(rec + REC_LEN) >> FP_SHIFT) as u8
    }

    fn rec_key(&self, rec: PmOffset) -> Vec<u8> {
        let len = self.rec_len(rec);
        let mut out = Vec::with_capacity(len);
        let mut off = rec + REC_KEY;
        while out.len() < len {
            let word = self.pool.load_u64(off).to_le_bytes();
            let take = (len - out.len()).min(8);
            out.extend_from_slice(&word[..take]);
            off += 8;
        }
        out
    }

    /// Allocates and fully persists a record; the caller then publishes
    /// it with a single 8-byte link store. Fresh records may come from
    /// the free list, so every word is written (no stale bytes).
    fn alloc_record(
        &self,
        key: &[u8],
        value: Value,
        next: PmOffset,
    ) -> Result<PmOffset, IndexError> {
        let size = record_size(key.len());
        let rec = self.pool.alloc(size, 8).map_err(IndexError::from)?;
        self.pool.store_u64(rec + REC_NEXT, next);
        self.pool.store_u64(rec + REC_VALUE, value);
        self.pool.store_u64(
            rec + REC_LEN,
            key.len() as u64 | (u64::from(suffix_fp(key)) << FP_SHIFT),
        );
        let mut off = rec + REC_KEY;
        for chunk in key.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.pool.store_u64(off, u64::from_le_bytes(word));
            off += 8;
        }
        self.pool.persist(rec, size);
        Ok(rec)
    }

    /// Immediate free — only for records that were never published (the
    /// bulk-load error path). Published records go through
    /// [`VarKeyStore::retire_record`].
    fn free_record(&self, rec: PmOffset) {
        self.pool.free(rec, record_size(self.rec_len(rec)));
    }

    /// Retires an unlinked record into the epoch domain: latch-free
    /// lookups may still be walking it, so the block returns to the free
    /// list only once two epochs have passed — online, while traffic is
    /// live.
    fn retire_record(&self, rec: PmOffset) {
        self.epoch
            .retire_pm(&self.pool, rec, record_size(self.rec_len(rec)));
    }

    /// Lexicographic comparison of a record's key against `key`, word at
    /// a time against the pooled bytes — no materialization, and usually
    /// decided by the first word.
    fn rec_key_cmp(&self, rec: PmOffset, key: &[u8]) -> std::cmp::Ordering {
        let len = self.rec_len(rec);
        let shared = len.min(key.len());
        let mut i = 0;
        let mut off = rec + REC_KEY;
        while i < shared {
            let word = self.pool.load_u64(off).to_le_bytes();
            let take = (shared - i).min(8);
            match word[..take].cmp(&key[i..i + take]) {
                std::cmp::Ordering::Equal => {}
                other => return other,
            }
            i += take;
            off += 8;
        }
        len.cmp(&key.len())
    }

    /// Walks the chain headed at `head` looking for `key`. Returns
    /// `(prev, at, found)`: `at` is the first record whose key is
    /// `>= key` (or `NULL_OFFSET` past the tail), `prev` its predecessor
    /// (or `NULL_OFFSET` at the head), and `found` whether `at` holds
    /// exactly `key`.
    fn chain_seek(&self, head: PmOffset, key: &[u8]) -> (PmOffset, PmOffset, bool) {
        let mut prev = NULL_OFFSET;
        let mut cur = head;
        while cur != NULL_OFFSET {
            self.pool.charge_serial_reads(1);
            match self.rec_key_cmp(cur, key) {
                std::cmp::Ordering::Less => {
                    prev = cur;
                    cur = self.rec_next(cur);
                }
                std::cmp::Ordering::Equal => return (prev, cur, true),
                std::cmp::Ordering::Greater => return (prev, cur, false),
            }
        }
        (prev, NULL_OFFSET, false)
    }

    /// One-word prefix probe for sorted-chain early termination: compares
    /// only the record's first key word against `key`. `Greater` is
    /// definitive (the sorted chain has passed the key's position);
    /// `Less`/`Equal` mean "keep walking" — the first word holds the
    /// chain's shared 7-byte chunk plus the first differing byte, so this
    /// is decisive for every chain whose keys diverge within 8 bytes.
    fn rec_prefix_cmp(&self, rec: PmOffset, key: &[u8]) -> std::cmp::Ordering {
        let shared = self.rec_len(rec).min(key.len()).min(8);
        let word = self.pool.load_u64(rec + REC_KEY).to_le_bytes();
        word[..shared].cmp(&key[..shared])
    }

    /// Exact-match chain walk guided by the suffix fingerprint: a record
    /// whose stored fingerprint differs from `fp` cannot hold `key`, so
    /// the full word-by-word compare is skipped — the win the fingerprint
    /// buys on chains of long shared-prefix keys (TPC-C customer names).
    /// A fingerprint *match* still verifies the key and uses its ordering
    /// to stop early; mismatching records get the cheap one-word
    /// [`rec_prefix_cmp`](Self::rec_prefix_cmp) probe so an absent-key
    /// lookup still terminates at its sort position instead of walking
    /// the whole chain.
    fn chain_find(&self, head: PmOffset, key: &[u8], fp: u8) -> Option<PmOffset> {
        let mut cur = head;
        while cur != NULL_OFFSET {
            self.pool.charge_serial_reads(1);
            if self.rec_fp(cur) == fp {
                match self.rec_key_cmp(cur, key) {
                    std::cmp::Ordering::Equal => return Some(cur),
                    std::cmp::Ordering::Greater => return None,
                    std::cmp::Ordering::Less => {}
                }
            } else if self.rec_prefix_cmp(cur, key) == std::cmp::Ordering::Greater {
                return None; // sorted chain already past the key
            }
            cur = self.rec_next(cur);
        }
        None
    }

    fn insert_overflow(&self, key: &[u8], value: Value) -> Result<Option<Value>, IndexError> {
        let chunk = codec::first_chunk(key);
        let _g = self.chains.stripe(chunk).write();
        let Some(head) = self.index.get(chunk) else {
            // First key of this chunk: record first, then the inner
            // insert (itself failure-atomic) publishes the chain.
            let rec = self.alloc_record(key, value, NULL_OFFSET)?;
            return match self.index.insert(chunk, rec) {
                Ok(_) => Ok(None),
                Err(e) => {
                    self.free_record(rec);
                    Err(e)
                }
            };
        };
        let (prev, at, found) = self.chain_seek(head, key);
        if found {
            // In-place value overwrite: one failure-atomic store.
            let old = self.rec_value(at);
            self.pool.store_u64(at + REC_VALUE, value);
            self.pool.persist(at + REC_VALUE, 8);
            return Ok(Some(old));
        }
        // Splice a fully persisted record in with one 8-byte link flip.
        let rec = self.alloc_record(key, value, at)?;
        if prev == NULL_OFFSET {
            if let Err(e) = self.index.update(chunk, rec) {
                self.free_record(rec);
                return Err(e);
            }
        } else {
            self.pool.store_u64(prev + REC_NEXT, rec);
            self.pool.persist(prev + REC_NEXT, 8);
        }
        Ok(None)
    }

    fn update_overflow(&self, key: &[u8], value: Value) -> Result<Option<Value>, IndexError> {
        let chunk = codec::first_chunk(key);
        let _g = self.chains.stripe(chunk).write();
        let Some(head) = self.index.get(chunk) else {
            return Ok(None);
        };
        let Some(at) = self.chain_find(head, key, suffix_fp(key)) else {
            return Ok(None);
        };
        let old = self.rec_value(at);
        self.pool.store_u64(at + REC_VALUE, value);
        self.pool.persist(at + REC_VALUE, 8);
        Ok(Some(old))
    }

    fn remove_overflow(&self, key: &[u8]) -> bool {
        let chunk = codec::first_chunk(key);
        let _g = self.chains.stripe(chunk).write();
        let Some(head) = self.index.get(chunk) else {
            return false;
        };
        let (prev, at, found) = self.chain_seek(head, key);
        if !found {
            return false;
        }
        let next = self.rec_next(at);
        if prev == NULL_OFFSET {
            // Unlink at the head: drop the chunk entirely or flip the
            // inner value to the successor — either way one atomic store.
            if next == NULL_OFFSET {
                self.index.remove(chunk);
            } else if self.index.update(chunk, next).is_err() {
                return false; // next is a nonzero offset; unreachable
            }
        } else {
            self.pool.store_u64(prev + REC_NEXT, next);
            self.pool.persist(prev + REC_NEXT, 8);
        }
        // The record is unlinked (one atomic flip); recycle it once every
        // pinned latch-free lookup has moved on.
        self.retire_record(at);
        true
    }

    /// Reads `chunk`'s live chain (ascending by key) into `out`, skipping
    /// keys below `bound`.
    ///
    /// The head is re-read from the inner index *under the chain's
    /// stripe latch*, never taken from the caller: a cursor hands in a
    /// chunk it buffered earlier, and by now a concurrent remove may
    /// have unlinked — and the free list recycled — the records the
    /// buffered head pointed at. The stripe excludes this chain's
    /// writers for the duration of the walk, so the re-read head and
    /// everything reachable from it stay valid.
    fn drain_chain(&self, chunk: u64, bound: &[u8], out: &mut Vec<(Vec<u8>, Value)>) {
        let _g = self.chains.stripe(chunk).read();
        let Some(head) = self.index.get(chunk) else {
            return; // chain removed since the cursor buffered the chunk
        };
        let mut cur = head;
        while cur != NULL_OFFSET {
            self.pool.charge_serial_reads(1);
            let k = self.rec_key(cur);
            let v = self.rec_value(cur);
            let next = self.rec_next(cur);
            if k.as_slice() >= bound {
                out.push((k, v));
            }
            cur = next;
        }
    }
}

impl<I: PmIndex> VarKeyIndex for VarKeyStore<I> {
    fn insert(&self, key: &[u8], value: Value) -> Result<Option<Value>, IndexError> {
        check_value(value)?;
        if key.len() <= codec::MAX_INLINE {
            self.index.insert(codec::first_chunk(key), value)
        } else {
            self.insert_overflow(key, value)
        }
    }

    fn update(&self, key: &[u8], value: Value) -> Result<Option<Value>, IndexError> {
        check_value(value)?;
        if key.len() <= codec::MAX_INLINE {
            self.index.update(codec::first_chunk(key), value)
        } else {
            self.update_overflow(key, value)
        }
    }

    fn get(&self, key: &[u8]) -> Option<Value> {
        let chunk = codec::first_chunk(key);
        if key.len() <= codec::MAX_INLINE {
            return self.index.get(chunk);
        }
        // Latch-free: every chain mutation is a single atomic link flip,
        // so the walk sees the old chain or the new one; the epoch pin
        // keeps concurrently removed records from being recycled — and
        // their memory reused — under the walk.
        let _pin = self.epoch.pin();
        let head = self.index.get(chunk)?;
        self.chain_find(head, key, suffix_fp(key))
            .map(|at| self.rec_value(at))
    }

    fn remove(&self, key: &[u8]) -> bool {
        if key.len() <= codec::MAX_INLINE {
            self.index.remove(codec::first_chunk(key))
        } else {
            self.remove_overflow(key)
        }
    }

    fn cursor(&self) -> Box<dyn ByteCursor + '_> {
        Box::new(StoreCursor {
            store: self,
            inner: self.index.cursor(),
            buf: Vec::new(),
            pos: 0,
            bound: Vec::new(),
            reverse: false,
            unbounded: false,
        })
    }

    fn bulk_load(
        &self,
        items: &mut dyn Iterator<Item = (Vec<u8>, Value)>,
    ) -> Result<usize, IndexError> {
        if !self.index.is_empty() {
            // Chains may already exist; merge through the ordinary
            // insert path (the inner index loop-inserts anyway once
            // non-empty).
            let mut fresh = 0;
            for (k, v) in items {
                if self.insert(&k, v)?.is_none() {
                    fresh += 1;
                }
            }
            return Ok(fresh);
        }
        // Empty store: sort, dedupe (last write wins, matching upsert
        // semantics), pre-build whole chains, and hand the inner index an
        // ascending chunk stream so it can build bottom-up. Like
        // `ShardedStore::bulk_load`, this transiently buffers the input.
        let mut all: Vec<(Vec<u8>, Value)> = items.collect();
        for (_, v) in &all {
            check_value(*v)?;
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        // Keep the *last* occurrence of each key.
        let mut deduped: Vec<(Vec<u8>, Value)> = Vec::with_capacity(all.len());
        for (k, v) in all {
            match deduped.last_mut() {
                Some(last) if last.0 == k => last.1 = v,
                _ => deduped.push((k, v)),
            }
        }
        let fresh = deduped.len();
        // A bulk load touches chains across the whole chunk space: take
        // every stripe rather than guessing which chunks it will build.
        let _g = self.chains.lock_all();
        let mut pairs: Vec<(u64, Value)> = Vec::with_capacity(fresh);
        let mut i = 0;
        while i < deduped.len() {
            let chunk = codec::first_chunk(&deduped[i].0);
            if deduped[i].0.len() <= codec::MAX_INLINE {
                pairs.push((chunk, deduped[i].1));
                i += 1;
                continue;
            }
            // Group every long key sharing this chunk into one chain,
            // built back to front so each record persists with its final
            // next pointer.
            let mut j = i;
            while j < deduped.len() && codec::first_chunk(&deduped[j].0) == chunk {
                j += 1;
            }
            let mut next = NULL_OFFSET;
            for (k, v) in deduped[i..j].iter().rev() {
                match self.alloc_record(k, *v, next) {
                    Ok(rec) => next = rec,
                    Err(e) => {
                        // Nothing references the records built so far
                        // (pairs is still private to this call): return
                        // every one — this partial chain and the chains
                        // of earlier groups — to the free list.
                        let mut r = next;
                        while r != NULL_OFFSET {
                            let n = self.rec_next(r);
                            self.free_record(r);
                            r = n;
                        }
                        for &(c, head) in &pairs {
                            if codec::is_inline(c) {
                                continue;
                            }
                            let mut r = head;
                            while r != NULL_OFFSET {
                                let n = self.rec_next(r);
                                self.free_record(r);
                                r = n;
                            }
                        }
                        return Err(e);
                    }
                }
            }
            pairs.push((chunk, next));
            i = j;
        }
        // On an inner-index failure the records cannot be reclaimed: the
        // inner contract loads items preceding the failure, so an unknown
        // prefix of the chains is already referenced. They leak — the
        // same documented PM-allocator trade-off as a failed rebalance.
        self.index.bulk_load(&mut pairs.into_iter())?;
        Ok(fresh)
    }

    fn name(&self) -> String {
        format!("VarKey({})", self.index.name())
    }
}

/// Streaming cursor over a [`VarKeyStore`]: drives the inner index's
/// cursor chunk by chunk, decoding inline chunks directly and draining
/// overflow chains (already sorted) through a small buffer.
struct StoreCursor<'a, I: PmIndex> {
    store: &'a VarKeyStore<I>,
    inner: Box<dyn Cursor + 'a>,
    /// One drained chain, consumed through `pos` (same pattern as
    /// `pmindex::chain::LeafChainCursor`) — the buffer is reused across
    /// chains, so a scan allocates nothing per chain but the keys.
    /// Ascending scans consume it front-to-back, descending scans
    /// back-to-front.
    buf: Vec<(Vec<u8>, Value)>,
    pos: usize,
    /// Lower bound from the last seek (upper bound, inclusive, after a
    /// `seek_for_prev`); entries outside it are dropped.
    bound: Vec<u8>,
    /// Scan direction, set by the last seek.
    reverse: bool,
    /// Reverse scan with no upper bound (a bare `prev()` from the end —
    /// byte strings have no maximum key to seek to).
    unbounded: bool,
}

impl<I: PmIndex> ByteCursor for StoreCursor<'_, I> {
    fn seek(&mut self, target: &[u8]) {
        self.inner.seek(codec::first_chunk(target));
        self.bound = target.to_vec();
        self.buf.clear();
        self.pos = 0;
        self.reverse = false;
        self.unbounded = false;
    }

    fn next(&mut self) -> Option<(Vec<u8>, Value)> {
        if self.reverse {
            return None; // direction switches go through a re-seek
        }
        loop {
            if self.pos < self.buf.len() {
                let entry = std::mem::take(&mut self.buf[self.pos]);
                self.pos += 1;
                return Some(entry);
            }
            let (chunk, value) = self.inner.next()?;
            match codec::decode_inline(chunk) {
                Some(key) => {
                    if key.as_slice() >= self.bound.as_slice() {
                        return Some((key, value));
                    }
                }
                None => {
                    // Overflow chain. `value` is the head the inner
                    // cursor buffered, but it may be stale by now —
                    // drain_chain re-resolves the live head under the
                    // chain latch instead of trusting it.
                    let _ = value;
                    self.buf.clear();
                    self.pos = 0;
                    self.store.drain_chain(chunk, &self.bound, &mut self.buf);
                }
            }
        }
    }

    fn seek_for_prev(&mut self, target: &[u8]) {
        // The chunk codec is order-preserving, so every key `<= target`
        // encodes a first chunk `<= first_chunk(target)` — the inner
        // reverse cursor starting there covers all candidates.
        self.inner.seek_for_prev(codec::first_chunk(target));
        self.bound = target.to_vec();
        self.buf.clear();
        self.pos = 0;
        self.reverse = true;
        self.unbounded = false;
    }

    fn prev(&mut self) -> Option<(Vec<u8>, Value)> {
        if !self.reverse {
            if !self.buf.is_empty() || !self.bound.is_empty() {
                return None; // direction switches go through a re-seek
            }
            // Bare prev() on a fresh cursor: chunks never reach u64::MAX
            // (their low byte is a small discriminant), so seeking the
            // inner cursor there lands past the largest chunk.
            self.inner.seek_for_prev(u64::MAX);
            self.reverse = true;
            self.unbounded = true;
        }
        loop {
            if self.pos > 0 {
                self.pos -= 1;
                return Some(std::mem::take(&mut self.buf[self.pos]));
            }
            let (chunk, value) = self.inner.prev()?;
            match codec::decode_inline(chunk) {
                Some(key) => {
                    if self.unbounded || key.as_slice() <= self.bound.as_slice() {
                        return Some((key, value));
                    }
                }
                None => {
                    // Overflow chain: drain it whole (ascending), drop
                    // what exceeds the upper bound — only the chain at
                    // the seek target can overshoot, since later chunks
                    // are strictly below it — and consume back-to-front.
                    let _ = value;
                    self.buf.clear();
                    self.store.drain_chain(chunk, &[], &mut self.buf);
                    if !self.unbounded {
                        let ub = &self.bound;
                        self.buf.retain(|(k, _)| k.as_slice() <= ub.as_slice());
                    }
                    self.pos = self.buf.len();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    fn store() -> VarKeyStore<fastfair::FastFairTree> {
        let pool = Arc::new(Pool::new(PoolConfig::new().size(8 << 20)).unwrap());
        let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())
            .unwrap();
        VarKeyStore::new(tree, pool)
    }

    #[test]
    fn inline_and_overflow_roundtrip() {
        let s = store();
        assert_eq!(s.insert(b"short", 1).unwrap(), None);
        assert_eq!(s.insert(b"a-much-longer-key", 2).unwrap(), None);
        assert_eq!(s.insert(b"", 3).unwrap(), None);
        assert_eq!(s.get(b"short"), Some(1));
        assert_eq!(s.get(b"a-much-longer-key"), Some(2));
        assert_eq!(s.get(b""), Some(3));
        assert_eq!(s.get(b"a-much-longer-ke"), None);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn shared_prefix_chains() {
        let s = store();
        // All of these share the first 7 bytes -> one chain.
        let keys: Vec<Vec<u8>> = (0..20)
            .map(|i| format!("prefix:{:04}", i * 7 % 20).into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.insert(k, (i + 1) as u64 * 2).unwrap(), None);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.get(k), Some((i + 1) as u64 * 2), "{k:?}");
        }
        // The whole chain hangs off a single inner entry.
        assert_eq!(s.inner().len(), 1);
        assert_eq!(s.len(), 20);
        // Upsert into the middle of the chain.
        assert_eq!(s.insert(&keys[7], 999).unwrap(), Some(16));
        assert_eq!(s.get(&keys[7]), Some(999));
    }

    #[test]
    fn update_never_inserts() {
        let s = store();
        assert_eq!(s.update(b"missing-long-key-here", 5).unwrap(), None);
        assert_eq!(s.update(b"mi", 5).unwrap(), None);
        assert!(s.is_empty());
        s.insert(b"missing-long-key-here", 6).unwrap();
        assert_eq!(s.update(b"missing-long-key-here", 7).unwrap(), Some(6));
        assert_eq!(s.get(b"missing-long-key-here"), Some(7));
    }

    #[test]
    fn remove_from_head_middle_tail() {
        let s = store();
        let keys = [&b"chain-key:a"[..], b"chain-key:m", b"chain-key:z"];
        for (i, k) in keys.iter().enumerate() {
            s.insert(k, (i + 1) as u64).unwrap();
        }
        assert!(s.remove(b"chain-key:m")); // middle
        assert_eq!(s.get(b"chain-key:m"), None);
        assert!(s.remove(b"chain-key:a")); // head (chain shrinks)
        assert!(s.remove(b"chain-key:z")); // last: chunk disappears
        assert!(!s.remove(b"chain-key:z"));
        assert!(s.is_empty());
        assert!(s.inner().is_empty());
    }

    #[test]
    fn cursor_is_lexicographic_across_inline_and_chains() {
        let s = store();
        let mut keys: Vec<Vec<u8>> = vec![
            b"".to_vec(),
            b"a".to_vec(),
            b"abcdefg".to_vec(),  // exactly 7 bytes: inline
            b"abcdefgh".to_vec(), // 8 bytes: chain, same 7-byte prefix
            b"abcdefgz".to_vec(),
            b"zz".to_vec(),
        ];
        for (i, k) in keys.iter().enumerate() {
            s.insert(k, (i + 1) as u64).unwrap();
        }
        keys.sort();
        let mut got = Vec::new();
        let mut c = s.cursor();
        while let Some((k, _)) = c.next() {
            got.push(k);
        }
        assert_eq!(got, keys);
        // Seek between the two chain members.
        c.seek(b"abcdefgi");
        assert_eq!(c.next().unwrap().0, b"abcdefgz".to_vec());
    }

    #[test]
    fn cursor_tolerates_chains_removed_and_recycled_mid_scan() {
        // The inner cursor buffers a whole leaf of (chunk, head) entries;
        // if a chain is removed — and its records recycled into a NEW
        // chain — after that buffering but before the drain, the cursor
        // must re-resolve the live head, not walk the recycled records.
        let s = store();
        for p in ["chain-a", "chain-b", "chain-c"] {
            for i in 0..3u64 {
                s.insert(format!("{p}:member{i}").as_bytes(), i + 1)
                    .unwrap();
            }
        }
        let mut cur = s.cursor();
        // Consuming chain-a buffers the (single) inner leaf, including
        // the soon-to-be-stale heads of chain-b and chain-c.
        for i in 0..3u64 {
            let (k, v) = cur.next().unwrap();
            assert_eq!(k, format!("chain-a:member{i}").into_bytes());
            assert_eq!(v, i + 1);
        }
        // Remove chain-b entirely and recycle its records into a new
        // chain with identical record sizes but different keys.
        for i in 0..3u64 {
            assert!(s.remove(format!("chain-b:member{i}").as_bytes()));
        }
        for i in 0..3u64 {
            s.insert(format!("chain-z:member{i}").as_bytes(), 100 + i)
                .unwrap();
        }
        // The continued scan must never emit a chain-b key (the chain is
        // gone) nor any key out of order (which walking the recycled
        // records through the stale head would produce).
        let mut last = b"chain-a:member2".to_vec();
        let mut saw_c = 0;
        while let Some((k, _)) = cur.next() {
            assert!(
                k > last,
                "out-of-order key {:?}",
                String::from_utf8_lossy(&k)
            );
            assert!(!k.starts_with(b"chain-b"), "phantom key from removed chain");
            if k.starts_with(b"chain-c") {
                saw_c += 1;
            }
            last = k;
        }
        assert_eq!(saw_c, 3, "untouched chain must stream in full");
    }

    #[test]
    fn failed_bulk_load_frees_prebuilt_chains() {
        // An overflow pool too small for the load: the chain pre-build
        // fails partway, and every record allocated so far must go back
        // to the free list (observable via nodes_recycled).
        let pool = Arc::new(Pool::new(PoolConfig::new().size(8 << 20)).unwrap());
        let tree = fastfair::FastFairTree::create(Arc::clone(&pool), fastfair::TreeOptions::new())
            .unwrap();
        let tiny = Arc::new(
            Pool::new(PoolConfig::new().size(pmem::POOL_HEADER_SIZE as usize + 256)).unwrap(),
        );
        let s = VarKeyStore::new(tree, tiny);
        let items: Vec<(Vec<u8>, Value)> = (0..50u64)
            .map(|i| (format!("will-not-fit:{i:04}").into_bytes(), i + 1))
            .collect();
        pmem::stats::reset();
        assert!(s.bulk_load(&mut items.into_iter()).is_err());
        let snap = pmem::stats::take();
        assert!(
            snap.nodes_recycled > 0,
            "partial chain build must recycle its records"
        );
        assert!(s.is_empty());
    }

    #[test]
    fn range_window() {
        let s = store();
        for i in 0..30u64 {
            s.insert(format!("user:{i:04}").as_bytes(), i + 1).unwrap();
        }
        let mut out = Vec::new();
        s.range(b"user:0010", b"user:0013", &mut out);
        let got: Vec<Vec<u8>> = out.into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            got,
            vec![
                b"user:0010".to_vec(),
                b"user:0011".to_vec(),
                b"user:0012".to_vec()
            ]
        );
    }

    #[test]
    fn bulk_load_fast_path_and_fallback() {
        let s = store();
        let mut items: Vec<(Vec<u8>, Value)> = (0..200u64)
            .map(|i| (format!("bulk-key:{:05}", i * 13 % 200).into_bytes(), i + 1))
            .collect();
        items.push((b"dup".to_vec(), 1));
        items.push((b"dup".to_vec(), 2)); // later duplicate wins
        let fresh = s.bulk_load(&mut items.clone().into_iter()).unwrap();
        assert_eq!(fresh, 201);
        assert_eq!(s.len(), 201);
        assert_eq!(s.get(b"dup"), Some(2));
        assert_eq!(
            s.get(b"bulk-key:00042"),
            Some(
                items
                    .iter()
                    .find(|(k, _)| k == b"bulk-key:00042")
                    .map(|&(_, v)| v)
                    .unwrap()
            )
        );
        // Second load hits the merge path (non-empty store).
        let fresh = s
            .bulk_load(&mut vec![(b"dup".to_vec(), 9), (b"fresh".to_vec(), 10)].into_iter())
            .unwrap();
        assert_eq!(fresh, 1);
        assert_eq!(s.get(b"dup"), Some(9));
        // Sorted cursor order survives the bulk path.
        let mut last: Option<Vec<u8>> = None;
        let mut c = s.cursor();
        while let Some((k, _)) = c.next() {
            if let Some(l) = &last {
                assert!(l < &k);
            }
            last = Some(k);
        }
    }

    #[test]
    fn reserved_values_rejected_everywhere() {
        let s = store();
        assert!(s.insert(b"looooooooong", 0).is_err());
        assert!(s.insert(b"s", u64::MAX).is_err());
        assert!(s.update(b"looooooooong", 0).is_err());
        assert!(s
            .bulk_load(&mut vec![(b"x".to_vec(), u64::MAX)].into_iter())
            .is_err());
    }

    #[test]
    fn removed_records_are_recycled_online() {
        let s = store();
        let keys: Vec<Vec<u8>> = (0..10)
            .map(|i| format!("recycle-me:{i:02}").into_bytes())
            .collect();
        for k in &keys {
            s.insert(k, 7).unwrap();
        }
        pmem::stats::reset();
        for k in &keys {
            assert!(s.remove(k));
        }
        // Removal retires into limbo; two epoch advances later the
        // records are back on the free list — no recover, no drop.
        assert_eq!(pmem::stats::snapshot().nodes_limbo, keys.len() as u64);
        s.epoch.try_advance();
        s.epoch.try_advance();
        s.epoch.collect();
        let snap = pmem::stats::take();
        assert_eq!(snap.nodes_limbo, 0); // gauge drained by the collect
        assert_eq!(snap.nodes_recycled_online, keys.len() as u64);
        assert_eq!(snap.nodes_recycled, keys.len() as u64);
        // Re-inserting identical keys reuses the freed records: the
        // allocator high-water mark must not move.
        let hw = s.pool().high_water();
        for k in &keys {
            s.insert(k, 8).unwrap();
        }
        assert_eq!(s.pool().high_water(), hw);
    }

    #[test]
    fn fingerprint_packs_beside_length() {
        let s = store();
        let key = b"fingerprint-bearing-key-of-31-b".to_vec();
        assert_eq!(key.len(), 31);
        s.insert(&key, 9).unwrap();
        let head = s.inner().get(codec::first_chunk(&key)).unwrap();
        assert_eq!(s.rec_len(head), 31);
        assert_eq!(s.rec_fp(head), suffix_fp(&key));
        assert_eq!(s.rec_key(head), key);
        assert_eq!(s.get(&key), Some(9));
    }

    #[test]
    fn fingerprint_collisions_still_resolve_exactly() {
        let s = store();
        // Same first chunk, many suffixes: some fingerprints will agree,
        // and equality must still be decided by the full key compare.
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| format!("collide:{i:03}").into_bytes())
            .collect();
        for (i, k) in keys.iter().enumerate() {
            s.insert(k, (i + 1) as u64).unwrap();
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.get(k), Some((i + 1) as u64), "{k:?}");
        }
        // Probing absent keys that share the chunk never false-positives.
        for i in 64..128u32 {
            assert_eq!(s.get(format!("collide:{i:03}").as_bytes()), None);
        }
        // update goes through the fingerprint walk too.
        assert_eq!(s.update(&keys[40], 999).unwrap(), Some(41));
        assert_eq!(s.get(&keys[40]), Some(999));
    }

    #[test]
    fn latch_free_get_survives_concurrent_removes() {
        let s = Arc::new(store());
        let keep: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("stable-key:{i:04}").into_bytes())
            .collect();
        let churn: Vec<Vec<u8>> = (0..200u32)
            .map(|i| format!("churned-key:{i:04}").into_bytes())
            .collect();
        for k in keep.iter().chain(churn.iter()) {
            s.insert(k, 5).unwrap();
        }
        std::thread::scope(|t| {
            {
                let s = Arc::clone(&s);
                let churn = &churn;
                t.spawn(move || {
                    for k in churn {
                        assert!(s.remove(k));
                    }
                });
            }
            for _ in 0..2 {
                let s = Arc::clone(&s);
                let keep = &keep;
                t.spawn(move || {
                    for _ in 0..20 {
                        for k in keep {
                            assert_eq!(s.get(k), Some(5), "stable key vanished");
                        }
                    }
                });
            }
        });
        for k in &churn {
            assert_eq!(s.get(k), None);
        }
    }

    /// Picks `n` 7-byte chain prefixes whose first chunks land on
    /// pairwise-distinct latch stripes, so each writer in the tests below
    /// owns a private chain AND a private latch.
    fn distinct_stripe_prefixes<I>(s: &VarKeyStore<I>, n: usize) -> Vec<String> {
        let mut prefixes: Vec<String> = Vec::new();
        let mut stripes: Vec<*const RwLock<()>> = Vec::new();
        for i in 0..10_000u32 {
            let p = format!("wch{i:04}");
            let stripe: *const _ = s.chains.stripe(codec::first_chunk(p.as_bytes()));
            if !stripes.contains(&stripe) {
                stripes.push(stripe);
                prefixes.push(p);
                if prefixes.len() == n {
                    return prefixes;
                }
            }
        }
        panic!("could not find {n} distinct stripes");
    }

    fn chain_key(prefix: &str, i: u32) -> Vec<u8> {
        // Longer than MAX_INLINE and sharing the 7-byte prefix: every
        // writer's keys go to one overflow chain.
        format!("{prefix}:{i:04}:padding-far-past-inline").into_bytes()
    }

    #[test]
    fn writers_on_distinct_chains_do_not_serialize() {
        // Regression for the coarse store-wide chain latch: holding ONE
        // chain's latch used to block every long-key writer. Now it may
        // only block the chain (stripe) it guards.
        use std::sync::atomic::{AtomicBool, Ordering};
        const PER_WRITER: u32 = 100;
        let s = Arc::new(store());
        let prefixes = distinct_stripe_prefixes(&s, 4);
        let blocked_chunk = codec::first_chunk(chain_key(&prefixes[3], 0).as_slice());
        let held = s.chains.stripe(blocked_chunk).write();
        let victim_started = Arc::new(AtomicBool::new(false));
        let victim_done = Arc::new(AtomicBool::new(false));
        std::thread::scope(|t| {
            let mut free = Vec::new();
            for p in &prefixes[..3] {
                let s = Arc::clone(&s);
                free.push(t.spawn(move || {
                    for i in 0..PER_WRITER {
                        s.insert(&chain_key(p, i), u64::from(i) + 1).unwrap();
                    }
                }));
            }
            {
                let s = Arc::clone(&s);
                let p = &prefixes[3];
                let started = Arc::clone(&victim_started);
                let done = Arc::clone(&victim_done);
                t.spawn(move || {
                    started.store(true, Ordering::SeqCst);
                    for i in 0..PER_WRITER {
                        s.insert(&chain_key(p, i), u64::from(i) + 1).unwrap();
                    }
                    done.store(true, Ordering::SeqCst);
                });
            }
            // The three writers on unheld stripes must run to completion
            // while stripe 3 stays write-locked — under the old coarse
            // latch these joins would deadlock against `held`.
            for h in free {
                h.join().unwrap();
            }
            while !victim_started.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert!(
                !victim_done.load(Ordering::SeqCst),
                "writer on the held stripe slipped past its latch"
            );
            drop(held);
        });
        assert!(victim_done.load(Ordering::SeqCst));
        for p in &prefixes {
            for i in 0..PER_WRITER {
                assert_eq!(s.get(&chain_key(p, i)), Some(u64::from(i) + 1));
            }
        }
        assert_eq!(s.len(), 4 * PER_WRITER as usize);
    }

    #[test]
    fn four_writer_disjoint_chain_storm_is_exact() {
        const PER_WRITER: u32 = 250;
        let s = Arc::new(store());
        let prefixes = distinct_stripe_prefixes(&s, 4);
        std::thread::scope(|t| {
            for (w, p) in prefixes.iter().enumerate() {
                let s = Arc::clone(&s);
                t.spawn(move || {
                    for i in 0..PER_WRITER {
                        let v = (w as u64) * 10_000 + u64::from(i) + 1;
                        s.insert(&chain_key(p, i), v).unwrap();
                    }
                    // Mixed mutations on the same private chain: updates
                    // and removes also ride the per-stripe latch.
                    for i in (0..PER_WRITER).step_by(5) {
                        assert!(s.remove(&chain_key(p, i)));
                    }
                });
            }
        });
        let mut live = 0;
        for (w, p) in prefixes.iter().enumerate() {
            for i in 0..PER_WRITER {
                let want = if i % 5 == 0 {
                    None
                } else {
                    Some((w as u64) * 10_000 + u64::from(i) + 1)
                };
                assert_eq!(s.get(&chain_key(p, i)), want);
                live += usize::from(want.is_some());
            }
        }
        assert_eq!(s.len(), live);
    }
}
