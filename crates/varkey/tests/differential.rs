//! Differential testing of `VarKeyStore` against `BTreeMap<Vec<u8>, u64>`
//! over **all six** index backends (FAST+FAIR, wB+-tree, FP-tree, WORT,
//! persistent skip list, volatile B-link) plus sharded routers — hash
//! partitioned and range partitioned at byte-prefix split points. Every
//! backend must agree with the model (and therefore with every other
//! backend) on identical byte-key operation sequences.

use std::collections::BTreeMap;
use std::sync::Arc;

use pmem::{Pool, PoolConfig};
use pmindex::PmIndex;
use rand::prelude::*;
use rand::rngs::StdRng;
use varkey::codec::prefix_bound;
use varkey::{ByteCursor, VarKeyIndex, VarKeyStore};

fn all_stores(pool: &Arc<Pool>) -> Vec<Box<dyn VarKeyIndex>> {
    fn store<I: PmIndex + 'static>(idx: I, pool: &Arc<Pool>) -> Box<dyn VarKeyIndex> {
        Box::new(VarKeyStore::new(idx, Arc::clone(pool)))
    }
    vec![
        store(
            fastfair::FastFairTree::create(Arc::clone(pool), fastfair::TreeOptions::new()).unwrap(),
            pool,
        ),
        store(wbtree::WbTree::create(Arc::clone(pool)).unwrap(), pool),
        store(fptree::FpTree::create(Arc::clone(pool)).unwrap(), pool),
        store(wort::Wort::create(Arc::clone(pool)).unwrap(), pool),
        store(
            pskiplist::PSkipList::create(Arc::clone(pool)).unwrap(),
            pool,
        ),
        store(blink::BlinkTree::new(), pool),
        // Sharded routers compose transparently under the adapter.
        store(
            shard::ShardedStore::<fastfair::FastFairTree>::create(
                Arc::clone(pool),
                vec![Arc::clone(pool); 4],
                shard::Partitioning::Hash { shards: 4 },
            )
            .unwrap(),
            pool,
        ),
        store(
            shard::ShardedStore::<fastfair::FastFairTree>::create(
                Arc::clone(pool),
                vec![Arc::clone(pool); 3],
                shard::Partitioning::Range {
                    // Byte-prefix split points: keys < "g" / ["g", "p") /
                    // >= "p", at chunk granularity.
                    bounds: vec![prefix_bound(b"g"), prefix_bound(b"p")],
                },
            )
            .unwrap(),
            pool,
        ),
    ]
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Update(Vec<u8>),
    Remove(Vec<u8>),
    Get(Vec<u8>),
    Range(Vec<u8>, Vec<u8>),
    CursorScan(Vec<u8>, Vec<u8>),
}

/// Random byte keys, 0–20 bytes over a 6-letter alphabet: short enough
/// for inline keys, collision-heavy enough that overflow chains grow
/// long shared prefixes.
fn random_key(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.gen_range(0..21usize);
    (0..len)
        .map(|_| b"acgptz"[rng.gen_range(0..6usize)])
        .collect()
}

fn random_ops(n: usize, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = random_key(&mut rng);
            match rng.gen_range(0..12) {
                0..=4 => Op::Insert(k),
                5 => Op::Update(k),
                6..=7 => Op::Remove(k),
                8..=9 => Op::Get(k),
                10 => {
                    let mut hi = k.clone();
                    hi.extend_from_slice(b"zzz");
                    Op::Range(k, hi)
                }
                _ => {
                    let mut hi = k.clone();
                    hi.extend_from_slice(b"ttt");
                    Op::CursorScan(k, hi)
                }
            }
        })
        .collect()
}

fn apply(store: &dyn VarKeyIndex, model: &mut BTreeMap<Vec<u8>, u64>, ops: &[Op]) {
    let mut next_value = 0x1000u64;
    for op in ops {
        match op {
            Op::Insert(k) => {
                next_value += 8;
                assert_eq!(
                    store.insert(k, next_value).unwrap(),
                    model.insert(k.clone(), next_value),
                    "{}: insert {k:?}",
                    store.name()
                );
            }
            Op::Update(k) => {
                next_value += 8;
                let want = model
                    .get_mut(k)
                    .map(|slot| std::mem::replace(slot, next_value));
                assert_eq!(
                    store.update(k, next_value).unwrap(),
                    want,
                    "{}: update {k:?}",
                    store.name()
                );
            }
            Op::Remove(k) => {
                assert_eq!(
                    store.remove(k),
                    model.remove(k).is_some(),
                    "{}: remove {k:?}",
                    store.name()
                );
            }
            Op::Get(k) => {
                assert_eq!(
                    store.get(k),
                    model.get(k).copied(),
                    "{}: get {k:?}",
                    store.name()
                );
            }
            Op::Range(lo, hi) => {
                let mut got = Vec::new();
                store.range(lo, hi, &mut got);
                let want: Vec<(Vec<u8>, u64)> = model
                    .range(lo.clone()..hi.clone())
                    .map(|(k, &v)| (k.clone(), v))
                    .collect();
                assert_eq!(got, want, "{}: range [{lo:?}, {hi:?})", store.name());
            }
            Op::CursorScan(lo, hi) => {
                let mut got = Vec::new();
                let mut c = store.cursor();
                c.seek(lo);
                while let Some((k, v)) = c.next() {
                    if k.as_slice() >= hi.as_slice() {
                        break;
                    }
                    got.push((k, v));
                }
                let want: Vec<(Vec<u8>, u64)> = model
                    .range(lo.clone()..hi.clone())
                    .map(|(k, &v)| (k.clone(), v))
                    .collect();
                assert_eq!(got, want, "{}: cursor [{lo:?}, {hi:?})", store.name());
            }
        }
    }
}

#[test]
fn all_backends_agree_with_byte_key_model() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(512 << 20)).unwrap());
    let ops = random_ops(3000, 0xfeed_beef);
    for store in all_stores(&pool) {
        let mut model = BTreeMap::new();
        apply(store.as_ref(), &mut model, &ops);
        // Final full-content comparison through an unbounded cursor.
        let mut got = Vec::new();
        let mut c = store.cursor();
        while let Some(e) = c.next() {
            got.push(e);
        }
        let want: Vec<(Vec<u8>, u64)> = model.iter().map(|(k, &v)| (k.clone(), v)).collect();
        assert_eq!(got, want, "{}: final content", store.name());
        assert_eq!(store.len(), model.len(), "{}: len", store.name());
    }
}

#[test]
fn bulk_load_then_scan_identical_across_backends() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(512 << 20)).unwrap());
    let mut rng = StdRng::seed_from_u64(42);
    let mut items: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while items.len() < 4000 {
        let k = random_key(&mut rng);
        if seen.insert(k.clone()) {
            let v = items.len() as u64 * 8 + 0x2000;
            items.push((k, v));
        }
    }
    let mut reference: Option<Vec<(Vec<u8>, u64)>> = None;
    for store in all_stores(&pool) {
        let fresh = store.bulk_load(&mut items.clone().into_iter()).unwrap();
        assert_eq!(fresh, items.len(), "{}: bulk count", store.name());
        let mut got = Vec::new();
        let mut c = store.cursor();
        while let Some(e) = c.next() {
            got.push(e);
        }
        assert_eq!(got.len(), items.len(), "{}: bulk len", store.name());
        match &reference {
            None => reference = Some(got),
            Some(r) => assert_eq!(&got, r, "{} diverges", store.name()),
        }
    }
}
