//! Crash sweep for overflow-record allocation and chain maintenance.
//!
//! A `VarKeyStore<FastFairTree>` lives with its overflow records in ONE
//! crash-logged pool, so the event log totally orders every store of
//! every chain mutation: record allocation and fill, the single 8-byte
//! link flip, in-place value overwrites, and unlinks. We materialize the
//! post-crash image at sampled cut points under the minimal, maximal and
//! env-seeded pseudo-random eviction policies (`FF_CRASH_SEED` varies the
//! latter across CI's crash matrix), re-open the store, and require:
//!
//! * every key committed before the in-flight operation is present with
//!   its exact committed value — key bytes and value never torn;
//! * the in-flight operation is atomic: old state or new state, nothing
//!   in between (a half-linked record is invisible, a half-removed key is
//!   still fully there);
//! * a full cursor scan agrees with the committed model (modulo the one
//!   in-flight key), so no phantom or duplicated chain entries exist.
//!
//! A separate (crash-free) test pins the leak story: every removed
//! record is returned to the pool's free list, observable via
//! `pmem::stats::nodes_recycled` and a flat allocator high-water mark on
//! re-insertion.

use std::collections::BTreeMap;
use std::sync::Arc;

use fastfair::{FastFairTree, TreeOptions};
use pmem::crash::Eviction;
use pmem::{Pool, PoolConfig};
use varkey::{ByteCursor, VarKeyIndex, VarKeyStore};

const POOL: usize = 8 << 20;

#[derive(Debug, Clone, PartialEq)]
enum Op {
    Insert(Vec<u8>, u64),
    Update(Vec<u8>, u64),
    Remove(Vec<u8>),
}

impl Op {
    fn key(&self) -> &[u8] {
        match self {
            Op::Insert(k, _) | Op::Update(k, _) | Op::Remove(k) => k,
        }
    }
}

/// Long keys across three regimes: one heavily shared 7-byte prefix (all
/// collide into a single chain), a moderately shared prefix, and unique
/// prefixes (chains of length one).
fn long_key(i: u64) -> Vec<u8> {
    match i % 3 {
        0 => format!("chain:0-member-{:03}", i / 3).into_bytes(),
        1 => format!("mid:{}:suffix-{:04}", i % 6, i).into_bytes(),
        _ => format!("uniq{:03}-tail-{}", i, i * 7).into_bytes(),
    }
}

fn reopen(img: &[u8], meta: u64) -> VarKeyStore<FastFairTree> {
    let pool = Arc::new(Pool::from_image(img, PoolConfig::new().size(POOL)).unwrap());
    let tree = FastFairTree::open(Arc::clone(&pool), meta, TreeOptions::new()).unwrap();
    VarKeyStore::new(tree, pool)
}

fn contents(store: &VarKeyStore<FastFairTree>) -> BTreeMap<Vec<u8>, u64> {
    let mut out = BTreeMap::new();
    let mut c = store.cursor();
    while let Some((k, v)) = c.next() {
        assert!(out.insert(k, v).is_none(), "duplicated key in scan");
    }
    out
}

#[test]
fn crash_sweep_overflow_chains_old_or_new() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(POOL).crash_log(true)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(256)).unwrap();
    let store = VarKeyStore::new(tree, Arc::clone(&pool));

    // Durable preload: 18 long keys spread over the three regimes.
    let mut committed: BTreeMap<Vec<u8>, u64> = BTreeMap::new();
    for i in 0..18u64 {
        let k = long_key(i);
        store.insert(&k, 1000 + i).unwrap();
        committed.insert(k, 1000 + i);
    }
    let log = pool.crash_log().unwrap();
    log.set_baseline(pool.volatile_image());

    // The op stream under test: fresh inserts into existing chains and
    // fresh chunks, in-place updates, removals at head/middle/tail.
    let mut ops: Vec<Op> = Vec::new();
    for i in 18..30u64 {
        ops.push(Op::Insert(long_key(i), 2000 + i));
    }
    for i in [0u64, 4, 8] {
        ops.push(Op::Update(long_key(i), 3000 + i));
    }
    for i in [3u64, 1, 20, 11] {
        ops.push(Op::Remove(long_key(i)));
    }
    ops.push(Op::Insert(long_key(3), 4003)); // re-insert a removed key

    // Record the committed model at each op boundary.
    let mut boundaries: Vec<(usize, BTreeMap<Vec<u8>, u64>)> = Vec::new();
    for op in &ops {
        boundaries.push((log.len(), committed.clone()));
        match op {
            Op::Insert(k, v) => {
                store.insert(k, *v).unwrap();
                committed.insert(k.clone(), *v);
            }
            Op::Update(k, v) => {
                assert!(store.update(k, *v).unwrap().is_some());
                committed.insert(k.clone(), *v);
            }
            Op::Remove(k) => {
                assert!(store.remove(k));
                committed.remove(k);
            }
        }
    }
    let total = log.len();
    boundaries.push((total, committed.clone()));
    let meta = store.inner().meta_offset();

    let stride = (total / 150).max(1);
    let mut cut = 0usize;
    while cut <= total {
        let idx = boundaries.partition_point(|(b, _)| *b <= cut) - 1;
        let at_boundary = boundaries[idx].0 == cut;
        let state = &boundaries[idx].1;
        let inflight = (!at_boundary && idx < ops.len()).then(|| &ops[idx]);
        for policy in [
            Eviction::None,
            Eviction::All,
            Eviction::random_with_env(cut as u64),
        ] {
            let img = pool.crash_image(cut, policy.clone());
            let reopened = reopen(&img, meta);

            // Committed keys exact, modulo the in-flight key.
            for (k, &v) in state {
                if inflight.is_some_and(|op| op.key() == k.as_slice()) {
                    continue;
                }
                assert_eq!(
                    reopened.get(k),
                    Some(v),
                    "cut {cut} {policy:?}: committed key {k:?}"
                );
            }
            // The in-flight op is atomic: old or new, never torn.
            if let Some(op) = inflight {
                let got = reopened.get(op.key());
                let old = state.get(op.key()).copied();
                let new = match op {
                    Op::Insert(_, v) | Op::Update(_, v) => Some(*v),
                    Op::Remove(_) => None,
                };
                assert!(
                    got == old || got == new,
                    "cut {cut} {policy:?}: in-flight {op:?} torn: {got:?}"
                );
            }
            // Full scan: well-formed keys, no phantoms, no duplicates.
            let mut scanned = contents(&reopened);
            if let Some(op) = inflight {
                // Normalize the one undetermined key before comparing.
                scanned.remove(op.key());
                let mut want = state.clone();
                want.remove(op.key());
                assert_eq!(scanned, want, "cut {cut} {policy:?}");
            } else {
                assert_eq!(&scanned, state, "cut {cut} {policy:?}");
            }
        }
        if cut == total {
            break;
        }
        cut = (cut + stride).min(total);
    }
}

#[test]
fn crash_during_bulk_chain_build_is_invisible_until_commit() {
    // bulk_load pre-builds whole chains and hands the inner tree a
    // sorted chunk stream whose only commit point is the tree's
    // persisted root store: every crash image shows the empty store or
    // the full load.
    let pool = Arc::new(Pool::new(PoolConfig::new().size(POOL).crash_log(true)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(256)).unwrap();
    let store = VarKeyStore::new(tree, Arc::clone(&pool));
    let log = pool.crash_log().unwrap();
    log.set_baseline(pool.volatile_image());

    let items: Vec<(Vec<u8>, u64)> = (0..120u64).map(|i| (long_key(i), i + 1)).collect();
    let want: BTreeMap<Vec<u8>, u64> = items.iter().cloned().collect();
    store.bulk_load(&mut items.into_iter()).unwrap();
    let meta = store.inner().meta_offset();
    let total = log.len();

    for cut in (0..=total).step_by(7) {
        for policy in [
            Eviction::None,
            Eviction::All,
            Eviction::random_with_env(cut as u64 + 1),
        ] {
            let img = pool.crash_image(cut, policy.clone());
            let reopened = reopen(&img, meta);
            let got = contents(&reopened);
            assert!(
                got.is_empty() || got == want,
                "cut {cut} {policy:?}: bulk load half-visible ({} of {} keys)",
                got.len(),
                want.len()
            );
        }
    }
}

#[test]
fn removed_overflow_records_recycle_with_zero_leaks() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(POOL)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new()).unwrap();
    let store = VarKeyStore::new(tree, Arc::clone(&pool));

    // One long chain (every key shares the 7-byte prefix "chain:0"), so
    // removals below are pure record unlinks — the inner tree's own node
    // recycling (which waits for a quiescent point) stays out of the
    // accounting.
    let keys: Vec<Vec<u8>> = (0..40u64).map(|i| long_key(i * 3)).collect();
    for (i, k) in keys.iter().enumerate() {
        store.insert(k, (i + 1) as u64).unwrap();
    }
    pmem::stats::reset();
    for k in &keys[1..] {
        assert!(store.remove(k));
    }
    // Every removed record was retired into limbo; two epoch advances
    // later all of them are back on the free list — online, with no
    // recover or drop involved.
    store.epoch().try_advance();
    store.epoch().try_advance();
    store.epoch().collect();
    let snap = pmem::stats::take();
    assert_eq!(
        snap.nodes_recycled,
        keys.len() as u64 - 1,
        "overflow records leaked on remove"
    );
    assert_eq!(
        snap.nodes_recycled_online,
        keys.len() as u64 - 1,
        "records must recycle online, not at a quiescent point"
    );
    // ... and re-inserting the same keys allocates nothing new: the
    // records are identically sized, so the free list satisfies them all.
    let hw = pool.high_water();
    for (i, k) in keys.iter().enumerate().skip(1) {
        store.insert(k, (i + 1) as u64).unwrap();
    }
    assert_eq!(pool.high_water(), hw, "re-insert leaked fresh allocations");
}
