//! Property tests pinning the key codec's two load-bearing guarantees
//! for byte strings of 0–64 bytes:
//!
//! * **order preservation**: `encode(a) < encode(b)` (lexicographic over
//!   the chunk sequence) exactly when `a < b` lexicographically;
//! * **injectivity**: equal encodings only for equal keys (the `Equal`
//!   arm of the same comparison).
//!
//! Plus the two derived facts the store relies on: the *first* chunk is
//! monotone (so the underlying `u64` index sorts byte keys correctly up
//! to chunk granularity), and inline encode/decode is the identity on
//! keys of at most `MAX_INLINE` bytes.

use proptest::prelude::*;
use varkey::codec::{decode_inline, encode, first_chunk, MAX_INLINE};

/// Byte strings 0–64 bytes long. A small alphabet maximizes shared
/// prefixes — the regime where ordering bugs hide.
fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Adversarial: tiny alphabet, heavy prefix sharing.
        2 => prop::collection::vec(0u64..4, 0..65)
            .prop_map(|v| v.into_iter().map(|b| b as u8).collect()),
        // General: full byte range.
        1 => prop::collection::vec(0u64..256, 0..65)
            .prop_map(|v| v.into_iter().map(|b| b as u8).collect()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn order_preserving_and_injective(a in key_strategy(), b in key_strategy()) {
        prop_assert_eq!(
            encode(&a).cmp(&encode(&b)),
            a.cmp(&b),
            "keys {:?} vs {:?}",
            &a,
            &b
        );
    }

    #[test]
    fn first_chunk_is_monotone(a in key_strategy(), b in key_strategy()) {
        // first_chunk may merge keys sharing a long prefix (chains
        // resolve those), but it must never invert their order.
        if a < b {
            prop_assert!(first_chunk(&a) <= first_chunk(&b), "{:?} vs {:?}", &a, &b);
        }
        // And it is never a reserved index-key pattern.
        prop_assert_ne!(first_chunk(&a), 0);
        prop_assert_ne!(first_chunk(&a), u64::MAX);
    }

    #[test]
    fn inline_roundtrip(a in key_strategy()) {
        let chunks = encode(&a);
        if a.len() <= MAX_INLINE {
            prop_assert_eq!(chunks.len(), 1);
            prop_assert_eq!(decode_inline(chunks[0]), Some(a));
        } else {
            prop_assert_eq!(chunks.len(), a.len().div_ceil(MAX_INLINE));
            // A continuation head never decodes as an inline key.
            prop_assert_eq!(decode_inline(chunks[0]), None);
        }
    }
}
