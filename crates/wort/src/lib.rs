//! WORT: Write-Optimal Radix Tree for persistent memory (Lee et al.,
//! FAST 2017).
//!
//! The radix baseline of the FAST+FAIR paper. A 4-bit-per-level radix tree
//! over 64-bit keys (16 nibbles, most-significant first, so in-order
//! traversal is numeric order) with **path compression**: each node packs
//! `{depth, prefix_len, up-to-12-nibble prefix}` into a single 8-byte
//! header, so every structural change commits with one failure-atomic
//! 8-byte store:
//!
//! * a plain insert stores the value into an empty child slot — one store,
//!   one flush (why WORT wins on pure write latency, Fig. 5(c));
//! * a prefix split builds the new parent off-line, swaps one child
//!   pointer atomically, and fixes the demoted node's header afterwards.
//!   A crash between the swap and the fix leaves a *stale depth* that
//!   readers detect (`node.depth != traversal depth`) and adapt to, and
//!   that the next writer repairs — WORT's own brand of endurable
//!   transient inconsistency.
//!
//! The trade-offs the paper measures are structural: lookups make one
//! dependent cache miss per radix level (no prefetching across levels), so
//! search degrades steeply with PM read latency (Fig. 5(b)), and range
//! queries must walk the trie in-order, which is why WORT loses the range
//! and TPC-C comparisons (Figs. 4, 6).
//!
//! Concurrency: like the original, not designed for concurrent access; a
//! tree-level mutex serializes operations (§5.7).

#![warn(missing_docs)]

use std::sync::Arc;

use parking_lot::Mutex;
use pmem::{stats, PmOffset, Pool, NULL_OFFSET};
use pmindex::{check_value, Cursor, IndexError, Key, PmIndex, Value};

/// Node size: 8-byte header + 16 child slots.
pub const NODE_SIZE: u64 = 8 + 16 * 8;

const MAX_PREFIX: u8 = 12; // nibbles that fit the 48-bit header field

const META_MAGIC: u64 = 0x574f_5254_0000_0001;
const META_ROOT: u64 = 8;

/// Nibble `i` (0 = most significant) of a key.
#[inline]
fn nibble(key: Key, i: u8) -> u8 {
    debug_assert!(i < 16);
    ((key >> ((15 - i) * 4)) & 0xf) as u8
}

/// Packed node header: `[depth:8][prefix_len:8][prefix:48]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Header {
    depth: u8,
    plen: u8,
    prefix: u64, // nibbles packed MSB-first in the low 4*plen bits
}

impl Header {
    fn pack(self) -> u64 {
        debug_assert!(self.plen <= MAX_PREFIX);
        (u64::from(self.depth) << 56)
            | (u64::from(self.plen) << 48)
            | (self.prefix & ((1 << 48) - 1))
    }

    fn unpack(v: u64) -> Header {
        Header {
            depth: (v >> 56) as u8,
            plen: ((v >> 48) & 0xff) as u8,
            prefix: v & ((1 << 48) - 1),
        }
    }

    fn prefix_nibble(&self, i: u8) -> u8 {
        debug_assert!(i < self.plen);
        ((self.prefix >> ((self.plen - 1 - i) * 4)) & 0xf) as u8
    }
}

fn pack_prefix(nibbles: &[u8]) -> u64 {
    let mut v = 0u64;
    for &n in nibbles {
        v = (v << 4) | u64::from(n);
    }
    v
}

/// A persistent write-optimal radix tree.
pub struct Wort {
    pool: Arc<Pool>,
    meta: PmOffset,
    op_lock: Mutex<()>,
    /// Reclamation domain for pruned subtrie nodes: a delete that empties
    /// a node unlinks it with one persisted store and retires it here, so
    /// the block recycles only after concurrent readers drain.
    epoch: Arc<epoch::EpochDomain>,
}

impl std::fmt::Debug for Wort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wort").field("meta", &self.meta).finish()
    }
}

impl Wort {
    /// Creates an empty WORT in `pool`.
    ///
    /// # Errors
    ///
    /// Fails if the pool cannot hold the superblock and root node.
    pub fn create(pool: Arc<Pool>) -> Result<Self, IndexError> {
        let meta = pool.alloc(64, 64)?;
        pool.zero_region(meta, 64);
        let root = Self::alloc_node(
            &pool,
            Header {
                depth: 0,
                plen: 0,
                prefix: 0,
            },
        )?;
        pool.store_u64(meta, META_MAGIC);
        pool.store_u64(meta + META_ROOT, root);
        pool.persist(meta, 64);
        Ok(Wort {
            pool,
            meta,
            op_lock: Mutex::new(()),
            epoch: epoch::EpochDomain::new(),
        })
    }

    /// Opens a WORT at `meta` (instant: the radix structure needs no
    /// rebuild or log replay).
    ///
    /// # Errors
    ///
    /// Fails if `meta` does not hold a WORT superblock.
    pub fn open(pool: Arc<Pool>, meta: PmOffset) -> Result<Self, IndexError> {
        if pool.load_u64(meta) != META_MAGIC {
            return Err(IndexError::PoolExhausted(format!(
                "no WORT superblock at {meta:#x}"
            )));
        }
        Ok(Wort {
            pool,
            meta,
            op_lock: Mutex::new(()),
            epoch: epoch::EpochDomain::new(),
        })
    }

    /// Superblock offset.
    pub fn meta_offset(&self) -> PmOffset {
        self.meta
    }

    /// The reclamation domain pruned subtrie nodes retire through.
    pub fn epoch(&self) -> &Arc<epoch::EpochDomain> {
        &self.epoch
    }

    /// Whether every child slot of `node` is empty (0 is both the absent
    /// pointer and the absent value).
    fn node_is_empty(&self, node: PmOffset) -> bool {
        (0u8..16).all(|i| self.child(node, i) == 0)
    }

    /// Prunes emptied nodes bottom-up after a delete. Each unlink is one
    /// persisted 8-byte store of the parent slot — failure-atomic, and
    /// crash-tolerant at every cut: a crash before the unlink leaves an
    /// empty node (readers find nothing there), after it an unreachable
    /// one (leaked, like any pre-crash free). The unlinked node is retired
    /// through the epoch domain rather than freed directly: today the
    /// tree-level mutex already excludes readers, but retirement keeps the
    /// unlink path safe if ops stop serializing, and routes the block
    /// through the same limbo/recycle accounting as the B+-tree's merges.
    fn prune_path(&self, path: &[(PmOffset, PmOffset)]) {
        // path[last] is the leaf-parent whose value slot was just cleared;
        // path[0] is the root, which always stays.
        for i in (1..path.len()).rev() {
            let (node, _) = path[i];
            if !self.node_is_empty(node) {
                return;
            }
            let (_, parent_slot) = path[i - 1];
            self.pool.store_u64(parent_slot, 0);
            self.pool.persist(parent_slot, 8);
            self.epoch.retire_pm(&self.pool, node, NODE_SIZE);
        }
    }

    fn alloc_node(pool: &Pool, h: Header) -> Result<PmOffset, IndexError> {
        let off = pool.alloc(NODE_SIZE, 64)?;
        pool.zero_region(off, NODE_SIZE);
        pool.store_u64(off, h.pack());
        Ok(off)
    }

    fn header(&self, node: PmOffset) -> Header {
        Header::unpack(self.pool.load_u64(node))
    }

    fn child(&self, node: PmOffset, i: u8) -> u64 {
        self.pool.load_u64(node + 8 + u64::from(i) * 8)
    }

    fn child_off(node: PmOffset, i: u8) -> PmOffset {
        node + 8 + u64::from(i) * 8
    }

    fn root(&self) -> PmOffset {
        self.pool.load_u64(self.meta + META_ROOT)
    }

    /// Effective prefix of a node reached at traversal depth `d`,
    /// tolerating a stale header from a crashed prefix split: if the stored
    /// depth is behind, the first `d - stored_depth` prefix nibbles have
    /// already been consumed by the new parent above.
    fn effective_prefix(h: Header, d: u8) -> Vec<u8> {
        let skip = d.saturating_sub(h.depth);
        (skip..h.plen).map(|i| h.prefix_nibble(i)).collect()
    }

    /// Builds the (at most two-node) chain holding the suffix of `key`
    /// starting at nibble `d`, returning the slot content for the parent.
    fn build_suffix(&self, key: Key, d: u8, value: Value) -> Result<u64, IndexError> {
        if d == 16 {
            return Ok(value);
        }
        let remaining = 15 - d; // nibbles available for the prefix
        let plen = remaining.min(MAX_PREFIX);
        let nibbles: Vec<u8> = (d..d + plen).map(|i| nibble(key, i)).collect();
        let h = Header {
            depth: d,
            plen,
            prefix: pack_prefix(&nibbles),
        };
        let off = Self::alloc_node(&self.pool, h)?;
        let idx = nibble(key, d + plen);
        let below = self.build_suffix(key, d + plen + 1, value)?;
        self.pool.store_u64(Self::child_off(off, idx), below);
        self.pool.persist(off, NODE_SIZE);
        Ok(off)
    }

    fn insert_locked(&self, key: Key, value: Value) -> Result<Option<Value>, IndexError> {
        let mut parent_slot = self.meta + META_ROOT;
        let mut node = self.root();
        let mut d: u8 = 0;
        loop {
            let h = self.header(node);
            let prefix = Self::effective_prefix(h, d);
            // Writers repair stale headers from crashed splits (lazy fix).
            if h.depth != d || prefix.len() != h.plen as usize {
                let fixed = Header {
                    depth: d,
                    plen: prefix.len() as u8,
                    prefix: pack_prefix(&prefix),
                };
                self.pool.store_u64(node, fixed.pack());
                self.pool.persist(node, 8);
            }
            // Compare the key against the compressed prefix.
            let mut j = 0u8;
            while (j as usize) < prefix.len() && nibble(key, d + j) == prefix[j as usize] {
                j += 1;
            }
            if (j as usize) < prefix.len() {
                // Prefix mismatch: split at j.
                let np_h = Header {
                    depth: d,
                    plen: j,
                    prefix: pack_prefix(&prefix[..j as usize]),
                };
                let np = Self::alloc_node(&self.pool, np_h)?;
                // Old node demotes below the split point.
                self.pool
                    .store_u64(Self::child_off(np, prefix[j as usize]), node);
                let suffix = self.build_suffix(key, d + j + 1, value)?;
                self.pool
                    .store_u64(Self::child_off(np, nibble(key, d + j)), suffix);
                self.pool.persist(np, NODE_SIZE);
                // Commit: one atomic 8-byte pointer swap.
                self.pool.store_u64(parent_slot, np);
                self.pool.persist(parent_slot, 8);
                // Fix the demoted node's header (crash-tolerable: readers
                // adapt via the depth check, the next writer repairs).
                let fixed = Header {
                    depth: d + j + 1,
                    plen: prefix.len() as u8 - j - 1,
                    prefix: pack_prefix(&prefix[j as usize + 1..]),
                };
                self.pool.store_u64(node, fixed.pack());
                self.pool.persist(node, 8);
                return Ok(None);
            }
            d += prefix.len() as u8;
            let idx = nibble(key, d);
            let slot = Self::child_off(node, idx);
            d += 1;
            if d == 16 {
                // Value position: a single persisted store (insert or
                // update) — WORT's write-optimality.
                let old = self.pool.load_u64(slot);
                self.pool.store_u64(slot, value);
                self.pool.persist(slot, 8);
                return Ok(if old == 0 { None } else { Some(old) });
            }
            let next = self.pool.load_u64(slot);
            if next == NULL_OFFSET {
                let suffix = self.build_suffix(key, d, value)?;
                self.pool.store_u64(slot, suffix);
                self.pool.persist(slot, 8);
                return Ok(None);
            }
            parent_slot = slot;
            node = next;
        }
    }

    fn get_locked(&self, key: Key) -> Option<Value> {
        let mut node = self.root();
        let mut d: u8 = 0;
        let mut visited = 0u32;
        loop {
            // Every level below the LLC-resident top of the trie is a
            // dependent cache miss — the serial pointer chasing that hurts
            // WORT as PM read latency grows (§5.4).
            visited += 1;
            if visited > 2 {
                self.pool.charge_serial_reads(1);
            }
            let h = self.header(node);
            let prefix = Self::effective_prefix(h, d);
            for (j, &p) in prefix.iter().enumerate() {
                if nibble(key, d + j as u8) != p {
                    return None;
                }
            }
            d += prefix.len() as u8;
            let idx = nibble(key, d);
            let slot = self.child(node, idx);
            d += 1;
            if d == 16 {
                return if slot == 0 { None } else { Some(slot) };
            }
            if slot == NULL_OFFSET {
                return None;
            }
            node = slot;
        }
    }

    /// In-order DFS collecting keys in `[lo, hi)`. `acc` holds the key bits
    /// fixed so far (aligned to the high bits).
    fn scan_node(
        &self,
        node: PmOffset,
        d: u8,
        acc: u64,
        lo: Key,
        hi: Key,
        out: &mut Vec<(Key, Value)>,
    ) {
        if d > 2 {
            self.pool.charge_serial_reads(1);
        }
        let h = self.header(node);
        let prefix = Self::effective_prefix(h, d);
        // Extend the fixed key bits with this node's compressed prefix.
        let mut acc2 = acc & Self::high_mask(d);
        for (j, &p) in prefix.iter().enumerate() {
            acc2 |= u64::from(p) << ((15 - (d + j as u8)) * 4);
        }
        let d = d + prefix.len() as u8;
        for i in 0u8..16 {
            let slot = self.child(node, i);
            if slot == 0 {
                continue;
            }
            let a = acc2 | (u64::from(i) << ((15 - d) * 4));
            if d + 1 == 16 {
                if a >= lo && a < hi {
                    out.push((a, slot));
                }
            } else {
                // Prune subtrees wholly outside the range.
                let lo_bound = a;
                let hi_bound = a | Self::low_mask(d + 1);
                if hi_bound < lo || lo_bound >= hi {
                    continue;
                }
                self.scan_node(slot, d + 1, a, lo, hi, out);
            }
        }
    }

    /// Updates an existing key's value slot with one persisted store;
    /// returns the replaced value, or `None` (tree untouched) when absent.
    fn update_locked(&self, key: Key, value: Value) -> Option<Value> {
        let mut node = self.root();
        let mut d: u8 = 0;
        let mut visited = 0u32;
        loop {
            visited += 1;
            if visited > 2 {
                self.pool.charge_serial_reads(1);
            }
            let h = self.header(node);
            let prefix = Self::effective_prefix(h, d);
            for (j, &p) in prefix.iter().enumerate() {
                if nibble(key, d + j as u8) != p {
                    return None;
                }
            }
            d += prefix.len() as u8;
            let idx = nibble(key, d);
            let slot_off = Self::child_off(node, idx);
            let slot = self.pool.load_u64(slot_off);
            d += 1;
            if d == 16 {
                if slot == 0 {
                    return None;
                }
                // Commit: a single failure-atomic 8-byte store.
                self.pool.store_u64(slot_off, value);
                self.pool.persist(slot_off, 8);
                return Some(slot);
            }
            if slot == NULL_OFFSET {
                return None;
            }
            node = slot;
        }
    }

    /// Smallest `(key, value)` with `key >= bound` in the subtree at
    /// `node`, or `None`. The in-order successor search that drives the
    /// cursor: one dependent miss per trie level, WORT's structural
    /// range-scan handicap (Fig. 4).
    fn min_ge(&self, node: PmOffset, d: u8, acc: u64, bound: Key) -> Option<(Key, Value)> {
        if d > 2 {
            self.pool.charge_serial_reads(1);
        }
        let h = self.header(node);
        let prefix = Self::effective_prefix(h, d);
        let mut acc2 = acc & Self::high_mask(d);
        for (j, &p) in prefix.iter().enumerate() {
            acc2 |= u64::from(p) << ((15 - (d + j as u8)) * 4);
        }
        let d = d + prefix.len() as u8;
        for i in 0u8..16 {
            let slot = self.child(node, i);
            if slot == 0 {
                continue;
            }
            let a = acc2 | (u64::from(i) << ((15 - d) * 4));
            if d + 1 == 16 {
                if a >= bound {
                    return Some((a, slot));
                }
            } else {
                // Skip subtrees wholly below the bound.
                if (a | Self::low_mask(d + 1)) < bound {
                    continue;
                }
                if let Some(found) = self.min_ge(slot, d + 1, a, bound) {
                    return Some(found);
                }
            }
        }
        None
    }

    /// Largest `(key, value)` with `key <= bound` in the subtree at
    /// `node`, or `None`. The in-order predecessor search behind
    /// [`Cursor::prev`]: children are probed high-to-low and any subtree
    /// whose smallest reachable key already exceeds the bound is skipped.
    fn max_le(&self, node: PmOffset, d: u8, acc: u64, bound: Key) -> Option<(Key, Value)> {
        if d > 2 {
            self.pool.charge_serial_reads(1);
        }
        let h = self.header(node);
        let prefix = Self::effective_prefix(h, d);
        let mut acc2 = acc & Self::high_mask(d);
        for (j, &p) in prefix.iter().enumerate() {
            acc2 |= u64::from(p) << ((15 - (d + j as u8)) * 4);
        }
        let d = d + prefix.len() as u8;
        for i in (0u8..16).rev() {
            let slot = self.child(node, i);
            if slot == 0 {
                continue;
            }
            let a = acc2 | (u64::from(i) << ((15 - d) * 4));
            if d + 1 == 16 {
                if a <= bound {
                    return Some((a, slot));
                }
            } else {
                // Skip subtrees wholly above the bound (`a` is the
                // subtree's smallest reachable key).
                if a > bound {
                    continue;
                }
                if let Some(found) = self.max_le(slot, d + 1, a, bound) {
                    return Some(found);
                }
            }
        }
        None
    }

    /// Mask of the key bits fixed by the first `d` nibbles.
    fn high_mask(d: u8) -> u64 {
        if d == 0 {
            0
        } else {
            !0u64 << ((16 - d) * 4)
        }
    }

    /// Mask of the key bits still free below nibble `d`.
    fn low_mask(d: u8) -> u64 {
        if d >= 16 {
            0
        } else {
            (1u64 << ((16 - d) * 4)) - 1
        }
    }
}

/// Streaming cursor over a WORT.
///
/// The trie has no sibling-linked leaves, so the cursor re-descends for
/// each entry: `next` finds the smallest key `>=` the running bound (one
/// dependent cache miss per level). This per-key pointer chase is the
/// structural reason WORT loses the paper's range-query comparison; the
/// cursor surfaces it honestly instead of hiding it behind a batch DFS.
pub struct WortCursor<'a> {
    tree: &'a Wort,
    bound: Key,
    done: bool,
    reverse: bool,
}

impl Cursor for WortCursor<'_> {
    fn seek(&mut self, target: Key) {
        self.bound = target;
        self.done = false;
        self.reverse = false;
    }

    fn next(&mut self) -> Option<(Key, Value)> {
        if self.done || self.reverse {
            return None;
        }
        let _g = self.tree.op_lock.lock();
        match self.tree.min_ge(self.tree.root(), 0, 0, self.bound) {
            Some((k, v)) => {
                match k.checked_add(1) {
                    Some(n) => self.bound = n,
                    None => self.done = true,
                }
                Some((k, v))
            }
            None => {
                self.done = true;
                None
            }
        }
    }

    fn seek_for_prev(&mut self, target: Key) {
        self.bound = target;
        self.done = false;
        self.reverse = true;
    }

    fn prev(&mut self) -> Option<(Key, Value)> {
        if !self.reverse {
            if self.bound == 0 && !self.done {
                // Bare prev() on a fresh cursor: start from the top.
                self.seek_for_prev(Key::MAX);
            } else {
                return None; // direction switches go through a re-seek
            }
        }
        if self.done {
            return None;
        }
        let _g = self.tree.op_lock.lock();
        match self.tree.max_le(self.tree.root(), 0, 0, self.bound) {
            Some((k, v)) => {
                match k.checked_sub(1) {
                    Some(n) => self.bound = n,
                    None => self.done = true,
                }
                Some((k, v))
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

impl pmindex::PersistentIndex for Wort {
    fn create_in(pool: Arc<Pool>) -> Result<Self, IndexError> {
        Wort::create(pool)
    }
    fn open_in(pool: Arc<Pool>, meta: PmOffset) -> Result<Self, IndexError> {
        Wort::open(pool, meta)
    }
    fn superblock(&self) -> PmOffset {
        self.meta_offset()
    }
}

impl PmIndex for Wort {
    fn insert(&self, key: Key, value: Value) -> Result<Option<Value>, IndexError> {
        check_value(value)?;
        let _g = self.op_lock.lock();
        stats::timed(stats::Phase::Update, || self.insert_locked(key, value))
    }

    fn update(&self, key: Key, value: Value) -> Result<Option<Value>, IndexError> {
        check_value(value)?;
        let _g = self.op_lock.lock();
        Ok(stats::timed(stats::Phase::Update, || {
            self.update_locked(key, value)
        }))
    }

    fn get(&self, key: Key) -> Option<Value> {
        let _g = self.op_lock.lock();
        stats::timed(stats::Phase::Search, || self.get_locked(key))
    }

    fn remove(&self, key: Key) -> bool {
        let _g = self.op_lock.lock();
        // Descend to the value slot, recording the path for pruning.
        let mut node = self.root();
        let mut d: u8 = 0;
        // (node, slot within node the descent took)
        let mut path: Vec<(PmOffset, PmOffset)> = Vec::with_capacity(4);
        loop {
            let h = self.header(node);
            let prefix = Self::effective_prefix(h, d);
            for (j, &p) in prefix.iter().enumerate() {
                if nibble(key, d + j as u8) != p {
                    return false;
                }
            }
            d += prefix.len() as u8;
            let idx = nibble(key, d);
            let slot_off = Self::child_off(node, idx);
            let slot = self.pool.load_u64(slot_off);
            d += 1;
            if d == 16 {
                if slot == 0 {
                    return false;
                }
                // Commit: one persisted store clears the value slot.
                self.pool.store_u64(slot_off, 0);
                self.pool.persist(slot_off, 8);
                path.push((node, slot_off));
                self.prune_path(&path);
                return true;
            }
            if slot == NULL_OFFSET {
                return false;
            }
            path.push((node, slot_off));
            node = slot;
        }
    }

    fn cursor(&self) -> Box<dyn Cursor + '_> {
        Box::new(WortCursor {
            tree: self,
            bound: 0,
            done: false,
            reverse: false,
        })
    }

    fn range(&self, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) {
        if lo >= hi {
            return;
        }
        // Materialized scans keep the batch DFS (shared prefix walk); the
        // streaming cursor pays a descent per key instead.
        let _g = self.op_lock.lock();
        self.scan_node(self.root(), 0, 0, lo, hi, out);
    }

    fn name(&self) -> &'static str {
        "WORT"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;
    use pmindex::workload::{generate_keys, value_for, KeyDist};
    use std::collections::BTreeMap;

    fn mk() -> (Arc<Pool>, Wort) {
        let p = Arc::new(Pool::new(PoolConfig::new().size(256 << 20)).unwrap());
        let t = Wort::create(Arc::clone(&p)).unwrap();
        (p, t)
    }

    #[test]
    fn upsert_update_and_cursor() {
        let (_p, t) = mk();
        let keys = generate_keys(3000, KeyDist::Uniform, 31);
        for &k in &keys {
            assert_eq!(t.insert(k, value_for(k)).unwrap(), None);
        }
        let probe = keys[7];
        assert_eq!(t.insert(probe, 4242).unwrap(), Some(value_for(probe)));
        assert_eq!(t.update(probe, 4243).unwrap(), Some(4242));
        assert_eq!(t.update(probe ^ 0x5a5a_5a5a, 9).unwrap(), None);
        t.insert(probe, value_for(probe)).unwrap();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        let mut c = t.cursor();
        let mut seen = Vec::new();
        while let Some((k, v)) = c.next() {
            assert_eq!(v, value_for(k));
            seen.push(k);
        }
        assert_eq!(seen, sorted);
        c.seek(sorted[1500]);
        assert_eq!(c.next(), Some((sorted[1500], value_for(sorted[1500]))));
    }

    #[test]
    fn header_pack_roundtrip() {
        let h = Header {
            depth: 7,
            plen: 5,
            prefix: pack_prefix(&[1, 2, 3, 4, 5]),
        };
        let u = Header::unpack(h.pack());
        assert_eq!(u, h);
        assert_eq!(u.prefix_nibble(0), 1);
        assert_eq!(u.prefix_nibble(4), 5);
    }

    #[test]
    fn nibble_order_is_big_endian() {
        let k = 0x0123_4567_89ab_cdefu64;
        assert_eq!(nibble(k, 0), 0x0);
        assert_eq!(nibble(k, 1), 0x1);
        assert_eq!(nibble(k, 15), 0xf);
    }

    #[test]
    fn insert_get_roundtrip() {
        let (_p, t) = mk();
        let keys = generate_keys(10_000, KeyDist::Uniform, 1);
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.get(k), Some(value_for(k)));
        }
        assert_eq!(t.get(12345), None);
    }

    #[test]
    fn dense_keys_share_prefixes() {
        let (_p, t) = mk();
        for k in 1..=5000u64 {
            t.insert(k, k + 9).unwrap();
        }
        for k in 1..=5000u64 {
            assert_eq!(t.get(k), Some(k + 9), "key {k}");
        }
    }

    #[test]
    fn upsert_and_remove() {
        let (_p, t) = mk();
        t.insert(0xdeadbeef, 1).unwrap();
        t.insert(0xdeadbeef, 2).unwrap();
        assert_eq!(t.get(0xdeadbeef), Some(2));
        assert!(t.remove(0xdeadbeef));
        assert!(!t.remove(0xdeadbeef));
        assert_eq!(t.get(0xdeadbeef), None);
    }

    #[test]
    fn remove_prunes_empty_subtries_through_epoch() {
        let (_p, t) = mk();
        // Keys sharing a 48-bit prefix: each builds a compressed suffix
        // chain below one slot of a shared parent.
        let keys: Vec<u64> = (0..32u64)
            .map(|i| 0xabcd_0000_0000_0000 | (i << 20))
            .collect();
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        for &k in &keys {
            assert!(t.remove(k), "remove {k:#x}");
        }
        for &k in &keys {
            assert_eq!(t.get(k), None);
        }
        // The emptied suffix chains were unlinked and retired, not leaked.
        let d = t.epoch();
        assert!(
            d.limbo_len() > 0 || d.recycled() > 0,
            "no pruned nodes reached the epoch domain"
        );
        d.try_advance();
        d.try_advance();
        d.collect();
        assert!(d.recycled() > 0, "pruned nodes never recycled");
        // The trie stays fully usable after a complete drain and prune.
        for &k in &keys {
            t.insert(k, value_for(k) ^ 1).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.get(k), Some(value_for(k) ^ 1));
        }
        let mut out = Vec::new();
        t.range(0, u64::MAX, &mut out);
        assert_eq!(out.len(), keys.len());
    }

    #[test]
    fn plain_insert_is_one_or_two_flushes() {
        // WORT's write-optimality: an insert into an existing node is a
        // single persisted 8-byte store (prefix splits and suffix chains
        // cost a couple more).
        let (_p, t) = mk();
        t.insert(0xaaaa_0001, 1).unwrap();
        t.insert(0xaaaa_0002, 2).unwrap();
        // Same parent node now exists; sibling nibble insert is minimal.
        stats::reset();
        t.insert(0xaaaa_0003, 3).unwrap();
        let s = stats::take();
        assert!(s.flushes <= 3, "flushes = {}", s.flushes);
    }

    #[test]
    fn range_matches_model() {
        let (_p, t) = mk();
        let keys = generate_keys(5000, KeyDist::Uniform, 2);
        let mut model = BTreeMap::new();
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
            model.insert(k, value_for(k));
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        for (a, b) in [(0usize, 4999usize), (10, 300), (2000, 4000)] {
            let (lo, hi) = (sorted[a], sorted[b]);
            let mut got = Vec::new();
            t.range(lo, hi, &mut got);
            let want: Vec<_> = model.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "range [{lo}, {hi})");
        }
    }

    #[test]
    fn full_range_sorted() {
        let (_p, t) = mk();
        let keys = generate_keys(3000, KeyDist::Uniform, 3);
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        let mut out = Vec::new();
        t.range(0, u64::MAX, &mut out);
        // u64::MAX itself can never be a key (reserved), so [0, MAX) is all.
        assert_eq!(out.len(), keys.len());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reopen_is_instant_and_complete() {
        let (p, t) = mk();
        let keys = generate_keys(5000, KeyDist::Uniform, 4);
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        let meta = t.meta_offset();
        drop(t);
        let img = p.volatile_image();
        let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(256 << 20)).unwrap());
        let t2 = Wort::open(Arc::clone(&p2), meta).unwrap();
        for &k in &keys {
            assert_eq!(t2.get(k), Some(value_for(k)));
        }
    }

    #[test]
    fn crash_sweep_during_inserts() {
        let p = Arc::new(Pool::new(PoolConfig::new().size(4 << 20).crash_log(true)).unwrap());
        let t = Wort::create(Arc::clone(&p)).unwrap();
        // Keys chosen to force prefix splits (shared then diverging paths).
        let preload = [0x1111_0000u64, 0x1111_00ff, 0x2222_0000];
        for &k in &preload {
            t.insert(k, value_for(k)).unwrap();
        }
        let log = p.crash_log().unwrap();
        log.set_baseline(p.volatile_image());
        let ops = [0x1111_0f00u64, 0x1111_0001, 0x3333_3333, 0x1111_00fe];
        let mut bounds = vec![0usize];
        for &k in &ops {
            t.insert(k, value_for(k)).unwrap();
            bounds.push(log.len());
        }
        let meta = t.meta_offset();
        for cut in 0..=log.len() {
            for policy in [
                pmem::crash::Eviction::None,
                pmem::crash::Eviction::All,
                pmem::crash::Eviction::Random(cut as u64),
            ] {
                let img = p.crash_image(cut, policy.clone());
                let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(4 << 20)).unwrap());
                let t2 = Wort::open(Arc::clone(&p2), meta).unwrap();
                // Committed keys always visible.
                for &k in &preload {
                    assert_eq!(
                        t2.get(k),
                        Some(value_for(k)),
                        "cut {cut} {policy:?}: preload key {k:#x} lost"
                    );
                }
                let done = bounds.partition_point(|&b| b <= cut) - 1;
                for &k in &ops[..done] {
                    assert_eq!(
                        t2.get(k),
                        Some(value_for(k)),
                        "cut {cut} {policy:?}: committed key {k:#x} lost"
                    );
                }
                // In-flight op is atomic.
                if done < ops.len() {
                    match t2.get(ops[done]) {
                        None => {}
                        Some(v) => assert_eq!(v, value_for(ops[done])),
                    }
                }
                // Writers repair stale headers: post-crash inserts work.
                t2.insert(0x4444_4444, 42).unwrap();
                assert_eq!(t2.get(0x4444_4444), Some(42));
                for &k in &preload {
                    assert_eq!(t2.get(k), Some(value_for(k)));
                }
            }
        }
    }

    #[test]
    fn adjacent_keys_and_extremes() {
        let (_p, t) = mk();
        for k in [
            1u64,
            2,
            3,
            u64::MAX - 2,
            u64::MAX - 1,
            1 << 63,
            (1 << 63) + 1,
        ] {
            t.insert(k, value_for(k)).unwrap();
        }
        for k in [
            1u64,
            2,
            3,
            u64::MAX - 2,
            u64::MAX - 1,
            1 << 63,
            (1 << 63) + 1,
        ] {
            assert_eq!(t.get(k), Some(value_for(k)), "key {k:#x}");
        }
    }
}
