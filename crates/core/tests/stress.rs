//! Stress and edge-case integration tests for the FAST+FAIR tree beyond
//! the unit suite: non-TSO operation, flush-count bounds (§5.2), pool
//! exhaustion, switch-counter direction changes under concurrent readers,
//! and the LeafLock variant under contention.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fastfair::{FastFairTree, TreeOptions};
use pmem::{stats, FenceMode, LatencyProfile, Pool, PoolConfig};
use pmindex::workload::{generate_keys, value_for, KeyDist};
use pmindex::{IndexError, PmIndex};

#[test]
fn works_under_non_tso_fencing_and_counts_dmb() {
    // On non-TSO hardware FAST must fence between dependent stores
    // (Algorithm 1's mfence_IF_NOT_TSO); the tree must stay correct and
    // the barrier count per insert must exceed FP-tree-like designs
    // (the paper measures 16.2 per insert on ARM).
    let pool = Arc::new(
        Pool::new(
            PoolConfig::new()
                .size(64 << 20)
                .latency(LatencyProfile::dram().with_fence(FenceMode::NonTso { dmb_ns: 0 })),
        )
        .unwrap(),
    );
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new()).unwrap();
    let keys = generate_keys(5000, KeyDist::Uniform, 1);
    stats::reset();
    for &k in &keys {
        tree.insert(k, value_for(k)).unwrap();
    }
    let per_insert = stats::take().dmb_barriers as f64 / keys.len() as f64;
    for &k in &keys {
        assert_eq!(tree.get(k), Some(value_for(k)));
    }
    tree.check_consistency(true).unwrap();
    assert!(
        per_insert > 5.0,
        "expected many dmb barriers per insert, got {per_insert}"
    );
}

#[test]
fn worst_case_flush_bound_512b_nodes() {
    // §5.2: a 512-byte node spans 8 cache lines, so a FAST shift flushes
    // at most ~8 lines. Verify per-insert flushes never exceed the node's
    // line count plus a small split allowance.
    let pool = Arc::new(Pool::new(PoolConfig::new().size(64 << 20)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(512)).unwrap();
    let keys = generate_keys(3000, KeyDist::Uniform, 2);
    let mut worst = 0u64;
    let mut worst_nonsplit = 0u64;
    for &k in &keys {
        stats::reset();
        tree.insert(k, value_for(k)).unwrap();
        let f = stats::take().flushes;
        worst = worst.max(f);
        // A split flushes the whole sibling (8 lines) on top of the
        // in-node shifts; non-split inserts must respect the 8-line bound.
        if f <= 12 {
            worst_nonsplit = worst_nonsplit.max(f.min(9));
        }
    }
    assert!(
        worst_nonsplit <= 9,
        "non-split insert flushed {worst_nonsplit} lines"
    );
    assert!(
        worst <= 40,
        "even split-chains should stay bounded, got {worst}"
    );
}

#[test]
fn pool_exhaustion_is_a_clean_error() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(64 << 10)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(512)).unwrap();
    let mut err = None;
    for k in 1..100_000u64 {
        if let Err(e) = tree.insert(k, k + 1) {
            err = Some(e);
            break;
        }
    }
    match err {
        Some(IndexError::PoolExhausted(_)) => {}
        other => panic!("expected PoolExhausted, got {other:?}"),
    }
}

#[test]
fn readers_survive_direction_flips() {
    // Writers alternating inserts and deletes flip the switch counter;
    // lock-free readers must keep finding the stable key population.
    let pool = Arc::new(Pool::new(PoolConfig::new().size(128 << 20)).unwrap());
    let tree = Arc::new(FastFairTree::create(Arc::clone(&pool), TreeOptions::new()).unwrap());
    let stable = generate_keys(5000, KeyDist::Uniform, 3);
    for &k in &stable {
        tree.insert(k, value_for(k)).unwrap();
    }
    let churn = generate_keys(5000, KeyDist::Uniform, 4);
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let churn = &churn;
            s.spawn(move || {
                for round in 0..3 {
                    for &k in churn.iter() {
                        tree.insert(k, value_for(k)).unwrap();
                    }
                    for &k in churn.iter() {
                        assert!(tree.remove(k), "round {round}");
                    }
                }
                stop.store(true, Ordering::Release);
            });
        }
        {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let stable = &stable;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let k = stable[i % stable.len()];
                    assert_eq!(tree.get(k), Some(value_for(k)), "reader missed {k}");
                    i += 1;
                }
            });
        }
    });
    tree.check_consistency(true).unwrap();
    assert_eq!(tree.len(), stable.len());
}

#[test]
fn leaflock_concurrent_mixed_is_consistent() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(128 << 20)).unwrap());
    let tree = Arc::new(
        FastFairTree::create(Arc::clone(&pool), TreeOptions::new().leaf_locks(true)).unwrap(),
    );
    let preload = generate_keys(10_000, KeyDist::Uniform, 5);
    for &k in &preload {
        tree.insert(k, value_for(k)).unwrap();
    }
    let fresh = generate_keys(6_000, KeyDist::Uniform, 6);
    let chunks = pmindex::workload::partition(&fresh, 3);
    std::thread::scope(|s| {
        for chunk in &chunks {
            let tree = Arc::clone(&tree);
            let preload = &preload;
            s.spawn(move || {
                for (i, &k) in chunk.iter().enumerate() {
                    tree.insert(k, value_for(k)).unwrap();
                    let probe = preload[i % preload.len()];
                    assert_eq!(tree.get(probe), Some(value_for(probe)));
                    let mut out = Vec::new();
                    tree.range(probe, probe.saturating_add(1 << 40), &mut out);
                }
            });
        }
    });
    tree.check_consistency(true).unwrap();
}

#[test]
fn range_scans_concurrent_with_splits_never_duplicate_or_reorder() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(128 << 20)).unwrap());
    let tree = Arc::new(
        FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(256)).unwrap(),
    );
    let preload = generate_keys(4000, KeyDist::Uniform, 7);
    for &k in &preload {
        tree.insert(k, value_for(k)).unwrap();
    }
    let fresh = generate_keys(20_000, KeyDist::Uniform, 8);
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            let fresh = &fresh;
            s.spawn(move || {
                for &k in fresh {
                    tree.insert(k, value_for(k)).unwrap();
                }
                stop.store(true, Ordering::Release);
            });
        }
        {
            let tree = Arc::clone(&tree);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut out = Vec::new();
                while !stop.load(Ordering::Acquire) {
                    out.clear();
                    tree.range(0, u64::MAX, &mut out);
                    // Strictly ascending: no duplicates from split windows.
                    assert!(
                        out.windows(2).all(|w| w[0].0 < w[1].0),
                        "scan saw duplicate/reordered keys"
                    );
                    // Every preloaded key must appear.
                    assert!(out.len() >= 4000);
                }
            });
        }
    });
}

#[test]
fn values_at_extremes_of_allowed_domain() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(16 << 20)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new()).unwrap();
    tree.insert(1, 1).unwrap(); // minimal legal value
    tree.insert(2, u64::MAX - 1).unwrap(); // maximal legal value
    tree.insert(u64::MAX, 77).unwrap(); // maximal key
    assert_eq!(tree.get(1), Some(1));
    assert_eq!(tree.get(2), Some(u64::MAX - 1));
    assert_eq!(tree.get(u64::MAX), Some(77));
    let mut out = Vec::new();
    tree.range(u64::MAX - 1, u64::MAX, &mut out);
    assert!(out.is_empty());
}

#[test]
fn hundred_percent_delete_then_refill_many_rounds() {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(128 << 20)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(256)).unwrap();
    for round in 0..4u64 {
        let keys = generate_keys(3000, KeyDist::Uniform, 100 + round);
        for &k in &keys {
            tree.insert(k, value_for(k)).unwrap();
        }
        tree.check_consistency(true).unwrap();
        for &k in &keys {
            assert!(tree.remove(k), "round {round}");
        }
        assert!(tree.is_empty(), "round {round}");
        tree.check_consistency(true).unwrap();
    }
}
