//! Exhaustive crash-point testing of FAST and FAIR.
//!
//! This is the simulation analogue of the paper's power-off experiment
//! (§5.7), made exhaustive: every 8-byte store and cache-line flush during
//! a batch of operations is a potential crash point, and at each point we
//! materialize several reachable persistent images (no eviction of dirty
//! lines, full eviction, and randomized per-line store prefixes). For every
//! image we assert the paper's guarantees:
//!
//! 1. **Readers tolerate the crash state**: every key committed before the
//!    in-flight operation is found with the correct value, without running
//!    any recovery; the in-flight operation is atomic (its key is either
//!    fully present or fully absent).
//! 2. **The structure is tolerably consistent**: `check_consistency` in
//!    tolerant mode passes (sorted nodes, sane links; transient artifacts
//!    allowed).
//! 3. **Writers repair lazily / recovery is idempotent**: after
//!    `recover()`, strict consistency holds and the data is unchanged.
//!
//! The randomized parts of each sweep (pseudo-random eviction prefixes,
//! generated key streams) are salted with `pmem::crash::env_seed()`
//! (`FF_CRASH_SEED`), so CI's crash-matrix job explores a different slice
//! of the reachable crash states on every seed leg.

use std::collections::BTreeMap;
use std::sync::Arc;

use fastfair::{FastFairTree, SplitStrategy, TreeOptions};
use pmem::crash::Eviction;
use pmem::{Pool, PoolConfig};
use pmindex::workload::{generate_keys, value_for, KeyDist};
use pmindex::PmIndex;

const POOL_BYTES: usize = 8 << 20;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    Insert(u64),
    Delete(u64),
    /// In-place 8-byte value overwrite of an existing key.
    Update(u64),
}

/// The value an in-place update writes: distinct from `value_for(k)` but
/// equally legal (odd, never 0 / `u64::MAX`).
fn updated_value_for(k: u64) -> u64 {
    value_for(k ^ 0x00ff_00ff_00ff_00ff)
}

/// Applies `ops` on a crash-logged tree, recording the event-log boundary
/// after each op; then sweeps crash points and eviction policies.
fn crash_sweep(opts: TreeOptions, preload: &[u64], ops: &[Op], cut_stride: usize) {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(POOL_BYTES).crash_log(true)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), opts).unwrap();
    let mut committed: BTreeMap<u64, u64> = BTreeMap::new();
    for &k in preload {
        tree.insert(k, value_for(k)).unwrap();
        committed.insert(k, value_for(k));
    }
    // Preload becomes the durable baseline; crash points cover only `ops`.
    let log = pool.crash_log().unwrap();
    log.set_baseline(pool.volatile_image());

    // State of `committed` *before* each op, plus the op itself.
    let mut boundaries: Vec<(usize, Op, BTreeMap<u64, u64>)> = Vec::new();
    for &op in ops {
        boundaries.push((log.len(), op, committed.clone()));
        match op {
            Op::Insert(k) => {
                tree.insert(k, value_for(k)).unwrap();
                committed.insert(k, value_for(k));
            }
            Op::Delete(k) => {
                tree.remove(k);
                committed.remove(&k);
            }
            Op::Update(k) => {
                assert!(tree.update(k, updated_value_for(k)).unwrap().is_some());
                committed.insert(k, updated_value_for(k));
            }
        }
    }
    let total = log.len();
    boundaries.push((total, Op::Insert(0), committed.clone())); // sentinel

    let meta = tree.meta_offset();
    let policies = [
        Eviction::None,
        Eviction::All,
        Eviction::random_with_env(1),
        Eviction::random_with_env(0xdead_beef),
    ];

    let mut cut = 0usize;
    while cut <= total {
        // Which op is in flight at this cut?
        let idx = boundaries.partition_point(|(b, _, _)| *b <= cut) - 1;
        let (_, inflight, state) = &boundaries[idx];
        let at_boundary = boundaries[idx].0 == cut;

        for policy in &policies {
            let img = pool.crash_image(cut, policy.clone());
            let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(POOL_BYTES)).unwrap());
            let t2 = FastFairTree::open(Arc::clone(&p2), meta, opts).unwrap();

            // (2) tolerable structural consistency, before any repair.
            t2.check_consistency(false).unwrap_or_else(|e| {
                panic!("cut {cut} policy {policy:?}: tolerant consistency failed: {e}")
            });

            // (1) readers tolerate the crash state.
            for (&k, &v) in state {
                if !at_boundary {
                    if let Op::Delete(dk) = inflight {
                        if *dk == k {
                            continue; // in-flight delete: either outcome is fine
                        }
                    }
                    if let Op::Update(uk) = inflight {
                        if *uk == k {
                            // In-flight in-place update: the single 8-byte
                            // commit means old value or new value — never a
                            // torn mixture, never absent.
                            let got = t2.get(k);
                            assert!(
                                got == Some(v) || got == Some(updated_value_for(k)),
                                "cut {cut} policy {policy:?}: torn in-place update \
                                 of key {k}: {got:?}"
                            );
                            continue;
                        }
                    }
                }
                assert_eq!(
                    t2.get(k),
                    Some(v),
                    "cut {cut} policy {policy:?}: committed key {k} lost before recovery"
                );
            }
            if !at_boundary {
                if let Op::Insert(ik) = inflight {
                    // Atomicity: present with the right value, or absent.
                    match t2.get(*ik) {
                        None => {}
                        Some(v) => assert_eq!(
                            v,
                            value_for(*ik),
                            "cut {cut} policy {policy:?}: torn in-flight insert"
                        ),
                    }
                }
            }

            // (3) eager recovery restores strict consistency, content intact.
            t2.recover().unwrap();
            t2.check_consistency(true).unwrap_or_else(|e| {
                panic!("cut {cut} policy {policy:?}: strict consistency after recover: {e}")
            });
            for (&k, &v) in state {
                if !at_boundary {
                    if let Op::Delete(dk) = inflight {
                        if *dk == k {
                            continue;
                        }
                    }
                    if let Op::Update(uk) = inflight {
                        if *uk == k {
                            let got = t2.get(k);
                            assert!(
                                got == Some(v) || got == Some(updated_value_for(k)),
                                "cut {cut}: update of key {k} torn by recover(): {got:?}"
                            );
                            continue;
                        }
                    }
                }
                assert_eq!(t2.get(k), Some(v), "cut {cut}: key {k} lost by recover()");
            }
            // Recovery is idempotent.
            let second = t2.recover().unwrap();
            assert_eq!(second.garbage_removed, 0, "recover not idempotent");
            assert_eq!(second.splits_completed, 0);
            assert_eq!(second.siblings_attached, 0);
        }
        if cut == total {
            break;
        }
        cut = (cut + cut_stride).min(total);
    }
}

#[test]
fn crash_during_fast_inserts_within_one_leaf() {
    // Small batch, no splits: exercises pure FAST shifts including slot 0.
    let preload: Vec<u64> = vec![100, 200, 300, 400, 500];
    let ops: Vec<Op> = [250u64, 50, 450, 150, 350]
        .iter()
        .map(|&k| Op::Insert(k))
        .collect();
    crash_sweep(TreeOptions::new().node_size(256), &preload, &ops, 1);
}

#[test]
fn crash_during_fast_deletes() {
    let preload: Vec<u64> = (1..=9).map(|k| k * 100).collect();
    let ops: Vec<Op> = [300u64, 100, 900, 500]
        .iter()
        .map(|&k| Op::Delete(k))
        .collect();
    crash_sweep(TreeOptions::new().node_size(256), &preload, &ops, 1);
}

#[test]
fn crash_during_fair_leaf_split() {
    // 256-byte nodes hold 10 records; preload 9 then insert to force the
    // first split, sweeping every store/flush of Algorithm 2.
    let preload: Vec<u64> = (1..=9).map(|k| k * 10).collect();
    let ops: Vec<Op> = [55u64, 65, 75, 85, 95]
        .iter()
        .map(|&k| Op::Insert(k))
        .collect();
    crash_sweep(TreeOptions::new().node_size(256), &preload, &ops, 1);
}

#[test]
fn crash_during_cascading_splits() {
    // Enough inserts to split internal nodes and grow the root twice.
    // The key stream varies with the CI seed matrix.
    let es = pmem::crash::env_seed();
    let preload = generate_keys(60, KeyDist::DenseShuffled, 5 ^ es)
        .into_iter()
        .map(|k| k * 7)
        .collect::<Vec<_>>();
    let fresh = generate_keys(120, KeyDist::Uniform, 11 ^ es);
    let ops: Vec<Op> = fresh.iter().map(|&k| Op::Insert(k)).collect();
    crash_sweep(TreeOptions::new().node_size(256), &preload, &ops, 7);
}

#[test]
fn crash_during_mixed_inserts_and_deletes() {
    let preload = generate_keys(40, KeyDist::DenseShuffled, 13)
        .into_iter()
        .map(|k| k * 3)
        .collect::<Vec<_>>();
    let mut ops = Vec::new();
    for i in 0..30u64 {
        if i % 3 == 2 {
            ops.push(Op::Delete((i % 40 + 1) * 3));
        } else {
            ops.push(Op::Insert(i * 91 + 2));
        }
    }
    crash_sweep(TreeOptions::new().node_size(256), &preload, &ops, 5);
}

#[test]
fn crash_during_logging_split_rolls_back() {
    // The FAST+Logging baseline must also recover (via undo log) at every
    // crash point.
    let preload: Vec<u64> = (1..=9).map(|k| k * 10).collect();
    let ops: Vec<Op> = [55u64, 65, 75].iter().map(|&k| Op::Insert(k)).collect();
    crash_sweep(
        TreeOptions::new()
            .node_size(256)
            .split(SplitStrategy::Logging),
        &preload,
        &ops,
        1,
    );
}

#[test]
fn crash_during_inplace_updates() {
    // The acceptance guarantee of the in-place upsert: every post-crash
    // image recovers to the old value or the new one, never a torn word.
    let preload: Vec<u64> = (1..=30).map(|k| k * 10).collect();
    let ops: Vec<Op> = [100u64, 250, 10, 300, 100, 170]
        .iter()
        .map(|&k| Op::Update(k))
        .collect();
    crash_sweep(TreeOptions::new().node_size(256), &preload, &ops, 1);
}

#[test]
fn crash_during_mixed_updates_inserts_deletes() {
    let preload: Vec<u64> = (1..=25).map(|k| k * 8).collect();
    let mut ops = Vec::new();
    for i in 0..24u64 {
        ops.push(match i % 3 {
            0 => Op::Insert(i * 13 + 3),
            1 => Op::Update(((i % 25) + 1) * 8),
            _ => Op::Delete(((i * 7) % 25 + 1) * 8),
        });
    }
    // Deletes may hit already-deleted keys; filter those out so Update
    // targets stay live.
    let mut live: std::collections::BTreeSet<u64> = preload.iter().copied().collect();
    let ops: Vec<Op> = ops
        .into_iter()
        .filter(|op| match op {
            Op::Insert(k) => live.insert(*k),
            Op::Update(k) => live.contains(k),
            Op::Delete(k) => live.remove(k),
        })
        .collect();
    crash_sweep(TreeOptions::new().node_size(256), &preload, &ops, 3);
}

#[test]
fn crash_during_bulk_load_recovers_old_or_new() {
    // bulk_load's only commit point is the persisted root-pointer store:
    // every crash image must recover to the previous (empty) tree or the
    // fully loaded one — never a partial or torn state.
    let pool = Arc::new(Pool::new(PoolConfig::new().size(POOL_BYTES).crash_log(true)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(256)).unwrap();
    let log = pool.crash_log().unwrap();
    log.set_baseline(pool.volatile_image());
    let n = 200u64;
    tree.bulk_load(&mut (1..=n).map(|k| (k * 5, value_for(k * 5))))
        .unwrap();
    let meta = tree.meta_offset();
    let total = log.len();
    let opts = TreeOptions::new();
    for cut in (0..=total).step_by(5) {
        for policy in [
            Eviction::None,
            Eviction::All,
            Eviction::random_with_env(cut as u64 + 1),
        ] {
            let img = pool.crash_image(cut, policy.clone());
            let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(POOL_BYTES)).unwrap());
            let t2 = FastFairTree::open(Arc::clone(&p2), meta, opts).unwrap();
            t2.check_consistency(false)
                .unwrap_or_else(|e| panic!("cut {cut} {policy:?}: {e}"));
            let len = t2.len();
            assert!(
                len == 0 || len == n as usize,
                "cut {cut} {policy:?}: bulk load half-visible ({len} of {n} keys)"
            );
            if len > 0 {
                for k in (1..=n).step_by(13) {
                    assert_eq!(t2.get(k * 5), Some(value_for(k * 5)), "cut {cut}");
                }
            }
            t2.recover().unwrap();
            t2.check_consistency(true)
                .unwrap_or_else(|e| panic!("cut {cut} {policy:?} post-recover: {e}"));
            assert_eq!(t2.len(), len, "recover() changed bulk-load visibility");
        }
    }
}

#[test]
fn crash_during_fingerprinted_inserts_and_split() {
    // 256-byte fingerprinted nodes hold 6 records: the batch crosses the
    // first split, sweeping every cut of the seal dance (unseal persist,
    // lockstep fp stores, fp-line flushes, reseal) and of the split's
    // truncation-window unseal/zero/reseal.
    let preload: Vec<u64> = vec![100, 200, 300, 400, 500];
    let ops: Vec<Op> = [250u64, 50, 450, 150, 350]
        .iter()
        .map(|&k| Op::Insert(k))
        .collect();
    crash_sweep(
        TreeOptions::new().node_size(256).fingerprints(true),
        &preload,
        &ops,
        1,
    );
}

#[test]
fn crash_during_fingerprinted_deletes_and_updates() {
    // Deletes break and re-arm the seal around the left-shift; in-place
    // updates must not disturb the fingerprint array at all.
    let preload: Vec<u64> = (1..=6).map(|k| k * 100).collect();
    let ops = vec![
        Op::Delete(100),
        Op::Update(400),
        Op::Delete(600),
        Op::Update(200),
        Op::Delete(300),
    ];
    crash_sweep(
        TreeOptions::new().node_size(256).fingerprints(true),
        &preload,
        &ops,
        1,
    );
}

#[test]
fn crash_during_circular_head_retreat_inserts() {
    // Every op lands below the median of the circular leaf, driving the
    // head-retreat path: the sweep cuts between the wrap-slot poison, the
    // head store/persist, each ascending copy and the final insert.
    let preload: Vec<u64> = (5..=9).map(|k| k * 100).collect();
    let ops: Vec<Op> = [450u64, 350, 250, 150, 50]
        .iter()
        .map(|&k| Op::Insert(k))
        .collect();
    crash_sweep(
        TreeOptions::new().node_size(256).circular(true),
        &preload,
        &ops,
        1,
    );
}

#[test]
fn crash_during_circular_head_advance_deletes() {
    // Deleting ascending minima keeps the victim below cnt/2, driving the
    // head-advance path: cuts land between the poison commit, each
    // descending copy, the pre-flip durability flush and the head persist.
    let preload: Vec<u64> = (1..=10).map(|k| k * 100).collect();
    let ops: Vec<Op> = [100u64, 200, 300, 400]
        .iter()
        .map(|&k| Op::Delete(k))
        .collect();
    crash_sweep(
        TreeOptions::new().node_size(256).circular(true),
        &preload,
        &ops,
        1,
    );
}

#[test]
fn crash_during_fp_circ_mixed_ops() {
    // Both levers on at once: lockstep fingerprint moves ride the circular
    // copies in both directions, across splits.
    let preload: Vec<u64> = (1..=25).map(|k| k * 8).collect();
    let mut live: std::collections::BTreeSet<u64> = preload.iter().copied().collect();
    let ops: Vec<Op> = (0..24u64)
        .map(|i| match i % 3 {
            0 => Op::Insert(i * 13 + 3),
            1 => Op::Update(((i % 25) + 1) * 8),
            _ => Op::Delete(((i * 7) % 25 + 1) * 8),
        })
        .filter(|op| match op {
            Op::Insert(k) => live.insert(*k),
            Op::Update(k) => live.contains(k),
            Op::Delete(k) => live.remove(k),
        })
        .collect();
    crash_sweep(
        TreeOptions::new()
            .node_size(256)
            .fingerprints(true)
            .circular(true),
        &preload,
        &ops,
        3,
    );
}

#[test]
fn crash_variant_axis_seeded() {
    // The CI seed matrix walks a different random slice of crash states
    // for every layout variant on every leg.
    let es = pmem::crash::env_seed();
    let preload = generate_keys(30, KeyDist::DenseShuffled, 23 ^ es)
        .into_iter()
        .map(|k| k * 11)
        .collect::<Vec<_>>();
    let fresh = generate_keys(30, KeyDist::Uniform, 29 ^ es);
    let mut ops: Vec<Op> = fresh.iter().map(|&k| Op::Insert(k)).collect();
    for (i, &k) in preload.iter().enumerate().take(8) {
        ops.insert(i * 3 + 2, Op::Delete(k));
    }
    for geom in [
        TreeOptions::new().fingerprints(true),
        TreeOptions::new().circular(true),
        TreeOptions::new().fingerprints(true).circular(true),
    ] {
        crash_sweep(geom.node_size(256), &preload, &ops, 11);
    }
}

#[test]
fn crash_with_larger_nodes() {
    let es = pmem::crash::env_seed();
    let preload = generate_keys(30, KeyDist::DenseShuffled, 17 ^ es)
        .into_iter()
        .map(|k| k * 11)
        .collect::<Vec<_>>();
    let ops: Vec<Op> = generate_keys(40, KeyDist::Uniform, 19 ^ es)
        .into_iter()
        .map(Op::Insert)
        .collect();
    crash_sweep(TreeOptions::new().node_size(512), &preload, &ops, 9);
}
