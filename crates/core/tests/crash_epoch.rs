//! Crash sweeps across the epoch-reclamation window.
//!
//! The crash story of `crates/epoch` is *degradation, never corruption*:
//! limbo lists are volatile, so a crash at **any** point between a
//! merge's retire and the collector's free must leave a pool that
//! recovers with zero lost keys and zero double-frees — the post-crash
//! image simply still contains the unlinked node (it leaks, or the
//! recover-time sweep re-discovers it if it is still chained).
//!
//! The sweeps drive the clock *explicitly* between operations so the
//! event log contains every phase of the reclamation lifecycle:
//!
//! 1. deletes that empty leaves → FAIR merges retire them into limbo;
//! 2. `try_advance`/`collect` → blocks return to the free list;
//! 3. an insert wave that **reuses the recycled blocks** — the scary
//!    images, where a crashed store log replays writes into a node's
//!    second life on top of remnants of its first.
//!
//! Every cut × eviction policy must satisfy: tolerant consistency before
//! repair, committed keys readable, strict consistency and intact data
//! after `recover()`, and a post-recovery refill that stays exact (a
//! double-free would hand one block to two owners and fail the
//! differential or the structural check).
//!
//! Randomized parts are salted with `pmem::crash::env_seed()`
//! (`FF_CRASH_SEED`), so the CI crash-matrix job explores a different
//! slice of the reachable crash states per seed leg.

use std::collections::BTreeMap;
use std::sync::Arc;

use fastfair::{FastFairTree, TreeOptions};
use pmem::crash::Eviction;
use pmem::{Pool, PoolConfig};
use pmindex::workload::value_for;
use pmindex::PmIndex;

const POOL_BYTES: usize = 8 << 20;

#[derive(Debug, Clone, Copy)]
enum Step {
    Insert(u64),
    Delete(u64),
    /// Advance the reclamation clock once and collect.
    Tick,
}

/// Runs `steps` on a crash-logged tree and sweeps every `cut_stride`-th
/// crash point under several eviction policies.
fn reclaim_crash_sweep(preload: &[u64], steps: &[Step], cut_stride: usize) {
    let opts = TreeOptions::new().node_size(256);
    let pool = Arc::new(Pool::new(PoolConfig::new().size(POOL_BYTES).crash_log(true)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), opts).unwrap();
    let mut committed: BTreeMap<u64, u64> = BTreeMap::new();
    for &k in preload {
        tree.insert(k, value_for(k)).unwrap();
        committed.insert(k, value_for(k));
    }
    let log = pool.crash_log().unwrap();
    log.set_baseline(pool.volatile_image());

    // Committed state before each step (for the in-flight tolerance of
    // whichever single op a cut lands inside).
    let mut boundaries: Vec<(usize, BTreeMap<u64, u64>)> = Vec::new();
    let mut retired_total = 0u64;
    for &step in steps {
        boundaries.push((log.len(), committed.clone()));
        match step {
            Step::Insert(k) => {
                tree.insert(k, value_for(k)).unwrap();
                committed.insert(k, value_for(k));
            }
            Step::Delete(k) => {
                tree.remove(k);
                committed.remove(&k);
            }
            Step::Tick => {
                tree.epoch().try_advance();
                retired_total += tree.epoch().collect() as u64;
            }
        }
    }
    let total = log.len();
    boundaries.push((total, committed.clone()));
    assert!(
        tree.epoch().limbo_len() > 0 || retired_total > 0,
        "sweep scenario never exercised the retire path"
    );

    let meta = tree.meta_offset();
    let policies = [Eviction::None, Eviction::All, Eviction::random_with_env(7)];

    let mut cut = 0usize;
    loop {
        let idx = boundaries.partition_point(|(b, _)| *b <= cut) - 1;
        let at_boundary = boundaries[idx].0 == cut;
        let state = &boundaries[idx].1;
        // Keys possibly mid-flight at this cut (the op between this
        // boundary and the next); both outcomes are legal for them.
        let next_state = boundaries.get(idx + 1).map(|(_, s)| s);

        for policy in &policies {
            let img = pool.crash_image(cut, policy.clone());
            let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(POOL_BYTES)).unwrap());
            let t2 = FastFairTree::open(Arc::clone(&p2), meta, opts).unwrap();

            // Tolerant consistency before any repair.
            t2.check_consistency(false).unwrap_or_else(|e| {
                panic!("cut {cut} policy {policy:?}: tolerant consistency: {e}")
            });

            // Recover: must flush nothing from limbo (it is volatile and
            // fresh handles start empty) and restore strict consistency.
            let report = t2.recover().unwrap();
            t2.check_consistency(true).unwrap_or_else(|e| {
                panic!("cut {cut} policy {policy:?}: strict consistency after recover: {e}")
            });

            // Stat drift: recover() runs the quiescent flush path, so the
            // recovered handle's limbo must be fully drained and the
            // thread-local `nodes_limbo` gauge must agree with the limbo
            // still live on this thread (the pre-crash `tree`'s; `t2`
            // contributes zero after recover).
            assert_eq!(
                t2.epoch().limbo_len(),
                0,
                "cut {cut} policy {policy:?}: recover() left limbo undrained"
            );
            assert_eq!(
                pmem::stats::snapshot().nodes_limbo,
                tree.epoch().limbo_len(),
                "cut {cut} policy {policy:?}: nodes_limbo gauge drifted from live limbo"
            );

            // Zero lost keys: everything committed before the in-flight
            // op reads back; the in-flight key may be old or new.
            for (&k, &v) in state {
                if !at_boundary {
                    let inflight_changed = next_state.is_some_and(|ns| ns.get(&k) != Some(&v));
                    if inflight_changed {
                        continue;
                    }
                }
                assert_eq!(
                    t2.get(k),
                    Some(v),
                    "cut {cut} policy {policy:?}: committed key {k} lost \
                     (recover report {report:?})"
                );
            }

            // Zero double-frees: refill heavily through the recovered
            // pool (whose free list now holds the swept blocks) and
            // verify exactness — one block with two owners cannot pass.
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut cur = t2.cursor();
            while let Some((k, v)) = pmindex::Cursor::next(&mut cur) {
                model.insert(k, v);
            }
            drop(cur);
            for i in 0..600u64 {
                let k = 5_000_000 + i;
                t2.insert(k, value_for(k)).unwrap();
                model.insert(k, value_for(k));
            }
            t2.check_consistency(false).unwrap_or_else(|e| {
                panic!("cut {cut} policy {policy:?}: refill broke the tree: {e}")
            });
            let mut n = 0usize;
            let mut cur = t2.cursor();
            while let Some((k, v)) = pmindex::Cursor::next(&mut cur) {
                assert_eq!(
                    model.get(&k),
                    Some(&v),
                    "cut {cut} policy {policy:?}: refill corrupted key {k}"
                );
                n += 1;
            }
            assert_eq!(
                n,
                model.len(),
                "cut {cut} policy {policy:?}: refill lost keys"
            );
        }
        if cut == total {
            break;
        }
        cut = (cut + cut_stride).min(total);
    }
}

/// Deletes empty two leaves (two merges retire them); the crash window
/// covers retire-but-never-collected limbo.
#[test]
fn crash_between_retire_and_collect() {
    let preload: Vec<u64> = (1..=30).map(|k| k * 10).collect();
    let steps: Vec<Step> = (11..=30).map(|k| Step::Delete(k * 10)).collect();
    reclaim_crash_sweep(&preload, &steps, 3);
}

/// The full lifecycle: merge-retire, explicit advance/collect ticks, and
/// an insert wave that reuses the recycled blocks — crash points land
/// inside a node's second life.
#[test]
fn crash_across_collect_and_block_reuse() {
    let preload: Vec<u64> = (1..=30).map(|k| k * 10).collect();
    let mut steps: Vec<Step> = (11..=30).map(|k| Step::Delete(k * 10)).collect();
    steps.extend([Step::Tick, Step::Tick, Step::Tick]);
    // Reuse wave: fresh keys packed into the recycled leaves.
    steps.extend((1..=40u64).map(|i| Step::Insert(1000 + i)));
    steps.extend([Step::Tick]);
    reclaim_crash_sweep(&preload, &steps, 5);
}

/// Alternating churn: every round retires, collects and reuses, so the
/// event log interleaves all three phases tightly.
#[test]
fn crash_during_interleaved_churn() {
    let preload: Vec<u64> = (1..=24).map(|k| k * 5).collect();
    let mut steps = Vec::new();
    for round in 0..3u64 {
        for k in 9..=24 {
            steps.push(Step::Delete(k * 5 + round));
        }
        steps.push(Step::Tick);
        steps.push(Step::Tick);
        for k in 9..=24u64 {
            steps.push(Step::Insert(k * 5 + round + 1));
        }
    }
    reclaim_crash_sweep(&preload, &steps, 11);
}
