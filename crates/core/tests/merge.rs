//! Tests for FAIR-style node merging (unlinking emptied leaves, §4.2) and
//! for recovery interrupted by a second crash.

use std::collections::BTreeMap;
use std::sync::Arc;

use fastfair::{FastFairTree, TreeOptions};
use pmem::crash::Eviction;
use pmem::{Pool, PoolConfig};
use pmindex::workload::{generate_keys, value_for, KeyDist};
use pmindex::PmIndex;

fn mk(node_size: u32) -> (Arc<Pool>, FastFairTree) {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(64 << 20)).unwrap());
    let tree =
        FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(node_size)).unwrap();
    (pool, tree)
}

/// Counts the leaves on the chain.
fn leaf_count(tree: &FastFairTree) -> usize {
    let mut out = Vec::new();
    tree.range(0, u64::MAX, &mut out);
    // Indirect: count via consistency report instead.
    let report = tree.check_consistency(true).unwrap();
    let _ = out;
    report.nodes
}

#[test]
fn emptied_leaves_are_unlinked() {
    let (_p, tree) = mk(256);
    // Build several leaves, then delete a whole middle band.
    for k in 1..=200u64 {
        tree.insert(k, k + 1).unwrap();
    }
    let nodes_before = leaf_count(&tree);
    for k in 50..=150u64 {
        assert!(tree.remove(k));
    }
    let nodes_after = leaf_count(&tree);
    assert!(
        nodes_after < nodes_before,
        "no nodes were unlinked ({nodes_before} -> {nodes_after})"
    );
    // Content is intact.
    for k in 1..50u64 {
        assert_eq!(tree.get(k), Some(k + 1));
    }
    for k in 50..=150u64 {
        assert_eq!(tree.get(k), None);
    }
    for k in 151..=200u64 {
        assert_eq!(tree.get(k), Some(k + 1));
    }
    tree.check_consistency(true).unwrap();
}

#[test]
fn delete_heavy_churn_with_merges_matches_model() {
    let (_p, tree) = mk(256);
    let keys = generate_keys(4000, KeyDist::DenseShuffled, 1);
    let mut model = BTreeMap::new();
    for (i, &k) in keys.iter().enumerate() {
        tree.insert(k, value_for(k)).unwrap();
        model.insert(k, value_for(k));
        // Periodically wipe out contiguous ranges to empty whole leaves.
        if i % 500 == 499 {
            let lo = (i as u64).saturating_sub(400);
            for victim in lo..lo + 300 {
                let removed = tree.remove(victim);
                assert_eq!(removed, model.remove(&victim).is_some());
            }
        }
    }
    let mut got = Vec::new();
    tree.range(0, u64::MAX, &mut got);
    let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got, want);
    tree.check_consistency(true).unwrap();
}

#[test]
fn recover_collapses_trivial_roots() {
    let (_p, tree) = mk(256);
    for k in 1..=300u64 {
        tree.insert(k, k + 1).unwrap();
    }
    let height_full = tree.height();
    assert!(height_full >= 2);
    for k in 1..=299u64 {
        assert!(tree.remove(k));
    }
    // Almost everything deleted; recover() collapses empty internal roots.
    let report = tree.recover().unwrap();
    let _ = report.roots_collapsed; // may be 0 if internal levels kept entries
    tree.check_consistency(true).unwrap();
    assert_eq!(tree.get(300), Some(301));
}

#[test]
fn crash_during_unlink_is_tolerable() {
    // Sweep crash points across deletes that trigger unlinking.
    let pool = Arc::new(Pool::new(PoolConfig::new().size(8 << 20).crash_log(true)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(256)).unwrap();
    for k in 1..=60u64 {
        tree.insert(k, value_for(k)).unwrap();
    }
    let log = pool.crash_log().unwrap();
    log.set_baseline(pool.volatile_image());
    // Delete a band that empties at least one leaf (10 records per leaf).
    let mut gone = Vec::new();
    for k in 20..=40u64 {
        assert!(tree.remove(k));
        gone.push(k);
    }
    let meta = tree.meta_offset();
    let total = log.len();
    for cut in 0..=total {
        for policy in [Eviction::None, Eviction::All, Eviction::Random(cut as u64)] {
            let img = pool.crash_image(cut, policy.clone());
            let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(8 << 20)).unwrap());
            let t2 = FastFairTree::open(Arc::clone(&p2), meta, TreeOptions::new()).unwrap();
            t2.check_consistency(false)
                .unwrap_or_else(|e| panic!("cut {cut} {policy:?}: {e}"));
            // Keys outside the deleted band must always be present.
            for k in (1..20u64).chain(41..=60) {
                assert_eq!(
                    t2.get(k),
                    Some(value_for(k)),
                    "cut {cut} {policy:?} key {k}"
                );
            }
            t2.recover().unwrap();
            t2.check_consistency(true)
                .unwrap_or_else(|e| panic!("cut {cut} {policy:?} post-recover: {e}"));
        }
    }
}

#[test]
fn crash_during_recovery_then_recover_again() {
    // Recovery itself is made of the same tolerable commits: crash it
    // halfway, reopen, recover again — the double-crash scenario.
    let pool = Arc::new(Pool::new(PoolConfig::new().size(8 << 20).crash_log(true)).unwrap());
    let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(256)).unwrap();
    let keys: Vec<u64> = (1..=9).map(|k| k * 10).collect();
    for &k in &keys {
        tree.insert(k, value_for(k)).unwrap();
    }
    let log = pool.crash_log().unwrap();
    log.set_baseline(pool.volatile_image());
    tree.insert(55, value_for(55)).unwrap(); // forces a split
    let meta = tree.meta_offset();

    // First crash: mid-split, nothing evicted.
    for first_cut in (0..=log.len()).step_by(4) {
        let img = pool.crash_image(first_cut, Eviction::None);
        let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(8 << 20)).unwrap());
        // Re-wrap with a crash log to capture recovery's stores.
        let img2 = p2.volatile_image();
        let p3 = Arc::new(Pool::new(PoolConfig::new().size(8 << 20).crash_log(true)).unwrap());
        // Seed p3 with img2 as its baseline state.
        for w in (0..img2.len() as u64).step_by(8) {
            let v = u64::from_le_bytes(img2[w as usize..w as usize + 8].try_into().unwrap());
            if v != 0 {
                p3.store_u64(w, v);
            }
        }
        p3.crash_log().unwrap().set_baseline(p3.volatile_image());
        let t3 = FastFairTree::open(Arc::clone(&p3), meta, TreeOptions::new()).unwrap();
        t3.recover().unwrap();
        let rec_events = p3.crash_log().unwrap().len();

        // Second crash: halfway through recovery's own stores.
        let second_cut = rec_events / 2;
        let img3 = p3.crash_image(second_cut, Eviction::Random(first_cut as u64));
        let p4 = Arc::new(Pool::from_image(&img3, PoolConfig::new().size(8 << 20)).unwrap());
        let t4 = FastFairTree::open(Arc::clone(&p4), meta, TreeOptions::new()).unwrap();
        // Committed keys must still be readable before and after the
        // second recovery.
        for &k in &keys {
            assert_eq!(t4.get(k), Some(value_for(k)), "first_cut {first_cut}");
        }
        t4.recover().unwrap();
        t4.check_consistency(true)
            .unwrap_or_else(|e| panic!("first_cut {first_cut}: {e}"));
        for &k in &keys {
            assert_eq!(t4.get(k), Some(value_for(k)));
        }
    }
}
