//! Online epoch-based reclamation under live traffic.
//!
//! The acceptance bar for the `crates/epoch` subsystem: a mixed
//! insert/delete/scan storm must grow `nodes_recycled_online` — unlinked
//! leaves returning to the pool's free list **while the workload runs**,
//! with no `recover()` and no handle drop anywhere in the loop — and the
//! tree must stay exactly equal to a `BTreeMap` model throughout (any
//! use-after-free or double-free shows up as a differential mismatch or a
//! structural-consistency failure).
//!
//! Three angles:
//!
//! * a seeded *property test* sweeping op-mix parameters single-threaded
//!   (deterministic: reclamation rides the ordinary pin/unpin cadence);
//! * a multi-threaded storm (writers emptying disjoint key ranges while
//!   scanners stream cursors) summing per-thread stats;
//! * a reader-pinned scenario proving the safety half: a live cursor
//!   *blocks* collection, and release un-blocks it.

use std::collections::BTreeMap;
use std::sync::Arc;

use fastfair::{FastFairTree, TreeOptions};
use pmem::{stats, Pool, PoolConfig};
use pmindex::workload::{partition, value_for};
use pmindex::{Cursor, PmIndex};
use proptest::prelude::*;

fn mk(pool_bytes: usize, node_size: u32) -> (Arc<Pool>, FastFairTree) {
    let pool = Arc::new(Pool::new(PoolConfig::new().size(pool_bytes)).unwrap());
    let tree =
        FastFairTree::create(Arc::clone(&pool), TreeOptions::new().node_size(node_size)).unwrap();
    (pool, tree)
}

/// Asserts tree == model exactly, via a full streamed scan.
fn assert_differential(tree: &FastFairTree, model: &BTreeMap<u64, u64>) {
    let mut cur = tree.cursor();
    let mut n = 0usize;
    while let Some((k, v)) = cur.next() {
        assert_eq!(model.get(&k), Some(&v), "phantom or stale key {k}");
        n += 1;
    }
    assert_eq!(n, model.len(), "scan lost keys");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Deterministic mixed storm: waves of contiguous inserts followed by
    /// deletes of most of each wave (contiguity is what empties leaves and
    /// triggers FAIR merges), with scans and point reads interleaved.
    #[test]
    fn mixed_storm_recycles_online_and_stays_exact(
        seed in 1u64..1_000,
        waves in 3usize..7,
        wave_len in 200usize..400,
    ) {
        let (_pool, tree) = mk(16 << 20, 256);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        stats::reset();
        let mut probe = seed;
        for w in 0..waves {
            let base = (w as u64) * 1_000_000 + seed;
            for i in 0..wave_len as u64 {
                let k = base + i;
                tree.insert(k, value_for(k)).unwrap();
                model.insert(k, value_for(k));
                // Interleave point reads of a pseudo-random live key.
                probe = probe.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if let Some((&pk, &pv)) = model.range(..=(base + probe % (i + 1))).next_back() {
                    prop_assert_eq!(tree.get(pk), Some(pv));
                }
            }
            // Delete the bulk of the wave (keep a sparse residue), then
            // scan — all while traffic keeps flowing; no recover, no drop.
            for i in 0..wave_len as u64 {
                if i % 17 != 0 {
                    let k = base + i;
                    prop_assert!(tree.remove(k));
                    model.remove(&k);
                }
            }
            assert_differential(&tree, &model);
            tree.check_consistency(false).unwrap();
        }
        let snap = stats::take();
        // Single-threaded storm: the thread-local limbo gauge must agree
        // exactly with the domain's live count — any drift means a drain
        // path forgot to decrement (or a retire path to increment) it.
        prop_assert_eq!(
            snap.nodes_limbo,
            tree.epoch().limbo_len(),
            "limbo gauge drifted from the domain's live count"
        );
        prop_assert!(
            snap.nodes_recycled_online > 0,
            "no node was recycled online (limbo {} / advances {})",
            snap.nodes_limbo,
            snap.epoch_advances
        );
        // Exactness after the storm — the zero-use-after-free oracle.
        assert_differential(&tree, &model);
        tree.check_consistency(false).unwrap();
    }
}

/// Concurrent storm: four writers empty disjoint key ranges (every wave
/// inserted then mostly deleted, forcing merges) while two scanners
/// stream cursors end to end. Per-thread stats snapshots are summed; the
/// total must show online recycling, and the final tree must match the
/// deterministic residue exactly.
#[test]
fn concurrent_storm_recycles_online() {
    let (_pool, tree) = mk(64 << 20, 512);
    let tree = Arc::new(tree);
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 1500;

    let all_keys: Vec<u64> = (0..(WRITERS as u64) * PER_WRITER)
        .map(|i| i * 3 + 1)
        .collect();
    let chunks = partition(&all_keys, WRITERS);

    let totals: Vec<stats::Snapshot> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for chunk in &chunks {
            let tree = Arc::clone(&tree);
            handles.push(s.spawn(move || {
                stats::reset();
                for round in 0..3 {
                    for &k in chunk {
                        tree.insert(k, value_for(k)).unwrap();
                    }
                    for &k in chunk {
                        // Last round keeps a sparse residue.
                        if round < 2 || k % 7 != 0 {
                            assert!(tree.remove(k), "key {k} vanished early");
                        }
                    }
                }
                stats::take()
            }));
        }
        for _ in 0..2 {
            let tree = Arc::clone(&tree);
            handles.push(s.spawn(move || {
                stats::reset();
                for _ in 0..8 {
                    let mut cur = tree.cursor();
                    let mut last = 0u64;
                    while let Some((k, v)) = cur.next() {
                        assert!(k > last, "cursor disorder at {k}");
                        assert_eq!(v, value_for(k), "torn value for {k}");
                        last = k;
                    }
                }
                stats::take()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total = totals
        .into_iter()
        .fold(stats::Snapshot::default(), |acc, s| acc + s);
    // Per-thread gauges saturate at zero (a thread may drain items a
    // different thread retired), so their sum bounds the live count from
    // above — it can never fall below what is actually still in limbo.
    assert!(
        total.nodes_limbo >= tree.epoch().limbo_len(),
        "summed limbo gauges ({}) below the domain's live count ({})",
        total.nodes_limbo,
        tree.epoch().limbo_len()
    );
    assert!(
        total.nodes_recycled_online > 0,
        "no online recycling under concurrency (limbo {}, advances {})",
        total.nodes_limbo,
        total.epoch_advances
    );

    // Deterministic residue: exactly the multiples of 7 of each range.
    let model: BTreeMap<u64, u64> = all_keys
        .iter()
        .filter(|&&k| k % 7 == 0)
        .map(|&k| (k, value_for(k)))
        .collect();
    assert_differential(&tree, &model);
    tree.check_consistency(false).unwrap();
    tree.recover().unwrap();
    tree.check_consistency(true).unwrap();
    assert_differential(&tree, &model);
}

/// Safety half of the contract: a pinned cursor blocks collection of a
/// leaf merged away under it; dropping the cursor releases the clock.
#[test]
fn live_cursor_blocks_collection_until_dropped() {
    let (_pool, tree) = mk(8 << 20, 256);
    for k in 1..=400u64 {
        tree.insert(k, value_for(k)).unwrap();
    }
    let mut cur = tree.cursor();
    assert!(Cursor::next(&mut cur).is_some()); // pinned mid-scan

    for k in 30..=400u64 {
        tree.remove(k); // empties + merges trailing leaves
    }
    assert!(tree.epoch().limbo_len() > 0, "merges retired nothing");
    // The clock cannot pass the cursor's pinned epoch.
    tree.epoch().try_advance();
    tree.epoch().try_advance();
    assert_eq!(tree.epoch().collect(), 0, "collected under a live cursor");

    // Dropping the cursor may itself run the amortized maintenance (it
    // always does under FF_EPOCH_STRESS=1), so assert on the domain's
    // cumulative counter rather than this one collect's return value.
    let recycled_before = tree.epoch().recycled();
    drop(cur);
    tree.epoch().try_advance();
    tree.epoch().try_advance();
    tree.epoch().collect();
    assert!(
        tree.epoch().recycled() > recycled_before,
        "release did not unblock collection"
    );
    for k in 1..30u64 {
        assert_eq!(tree.get(k), Some(value_for(k)));
    }
}

/// A long-lived tree that keeps churning must not grow its pool without
/// bound: after the first churn round sets the high-water mark, later
/// rounds run entirely out of recycled nodes.
#[test]
fn steady_state_churn_reuses_nodes() {
    let (pool, tree) = mk(16 << 20, 256);
    let churn = |tree: &FastFairTree| {
        for k in 1..=2000u64 {
            tree.insert(k, value_for(k)).unwrap();
        }
        for k in 1..=2000u64 {
            assert!(tree.remove(k));
        }
    };
    churn(&tree);
    // One deterministic drain so round 1's limbo is on the free list.
    tree.epoch().try_advance();
    tree.epoch().try_advance();
    tree.epoch().collect();
    let hw = pool.high_water();
    for _ in 0..4 {
        churn(&tree);
        tree.epoch().try_advance();
        tree.epoch().try_advance();
        tree.epoch().collect();
    }
    let grown = pool.high_water() - hw;
    assert!(
        grown <= 64 * 256,
        "steady-state churn leaked {grown} bytes of fresh allocation"
    );
    assert!(tree.is_empty());
}
