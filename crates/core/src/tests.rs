//! Unit and property tests for the FAST+FAIR tree.

use std::collections::BTreeMap;
use std::sync::Arc;

use pmem::{stats, Pool, PoolConfig};
use pmindex::workload::{generate_keys, value_for, KeyDist};
use pmindex::{Cursor, PmIndex};
use proptest::prelude::*;

use crate::{FastFairTree, InNodeSearch, SplitStrategy, TreeOptions};

fn pool(mb: usize) -> Arc<Pool> {
    Arc::new(Pool::new(PoolConfig::new().size(mb << 20)).unwrap())
}

fn tree_with(pool: &Arc<Pool>, opts: TreeOptions) -> FastFairTree {
    FastFairTree::create(Arc::clone(pool), opts).unwrap()
}

fn small_tree() -> (Arc<Pool>, FastFairTree) {
    let p = pool(64);
    let t = tree_with(&p, TreeOptions::new());
    (p, t)
}

#[test]
fn empty_tree_behaviour() {
    let (_p, t) = small_tree();
    assert_eq!(t.get(1), None);
    assert!(!t.remove(1));
    assert!(t.is_empty());
    assert_eq!(t.len(), 0);
    assert_eq!(t.height(), 0);
    let mut out = Vec::new();
    t.range(0, u64::MAX, &mut out);
    assert!(out.is_empty());
}

#[test]
fn single_insert_get_remove() {
    let (_p, t) = small_tree();
    t.insert(42, 4242).unwrap();
    assert_eq!(t.get(42), Some(4242));
    assert_eq!(t.get(41), None);
    assert_eq!(t.get(43), None);
    assert!(!t.is_empty());
    assert_eq!(t.len(), 1);
    assert!(t.remove(42));
    assert_eq!(t.get(42), None);
    assert!(t.is_empty());
}

#[test]
fn reserved_values_rejected() {
    let (_p, t) = small_tree();
    assert!(t.insert(1, 0).is_err());
    assert!(t.insert(1, u64::MAX).is_err());
}

#[test]
fn upsert_replaces_value() {
    let (_p, t) = small_tree();
    assert_eq!(t.insert(7, 100).unwrap(), None);
    assert_eq!(t.insert(7, 200).unwrap(), Some(100));
    assert_eq!(t.get(7), Some(200));
    assert_eq!(t.len(), 1);
    // Upserting the same value is a no-op that still reports the old one.
    assert_eq!(t.insert(7, 200).unwrap(), Some(200));
}

#[test]
fn update_only_touches_existing_keys() {
    let (_p, t) = small_tree();
    let keys = generate_keys(5000, KeyDist::Uniform, 71);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    let probe = keys[123];
    assert_eq!(t.update(probe, 999_999).unwrap(), Some(value_for(probe)));
    assert_eq!(t.get(probe), Some(999_999));
    // Absent key: no insert, tree size unchanged.
    let absent = keys.iter().fold(1u64, |a, &k| a.wrapping_add(k)) | 1;
    if !keys.contains(&absent) {
        assert_eq!(t.update(absent, 7).unwrap(), None);
        assert_eq!(t.get(absent), None);
    }
    assert_eq!(t.len(), keys.len());
    assert!(t.update(probe, 0).is_err());
    t.check_consistency(true).unwrap();
}

#[test]
fn cursor_streams_and_reseeks() {
    let (_p, t) = small_tree();
    let keys = generate_keys(10_000, KeyDist::Uniform, 73);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let mut c = t.cursor();
    let mut seen = Vec::new();
    while let Some((k, v)) = c.next() {
        assert_eq!(v, value_for(k));
        seen.push(k);
    }
    assert_eq!(seen, sorted);
    // Reuse via seek, including a seek backwards.
    c.seek(sorted[5000]);
    assert_eq!(c.next(), Some((sorted[5000], value_for(sorted[5000]))));
    c.seek(sorted[10]);
    assert_eq!(c.next(), Some((sorted[10], value_for(sorted[10]))));
    // Seek between two keys lands on the successor.
    if sorted[20] + 1 < sorted[21] {
        c.seek(sorted[20] + 1);
        assert_eq!(c.next(), Some((sorted[21], value_for(sorted[21]))));
    }
    c.seek(u64::MAX);
    assert!(sorted.binary_search(&u64::MAX).is_err());
    assert_eq!(c.next(), None);
}

#[test]
fn bulk_load_builds_packed_tree() {
    let (_p, t) = small_tree();
    let n = 20_000u64;
    let loaded = t
        .bulk_load(&mut (1..=n).map(|k| (k, value_for(k))))
        .unwrap();
    assert_eq!(loaded, n as usize);
    assert_eq!(t.len(), n as usize);
    t.check_consistency(true).unwrap();
    for k in (1..=n).step_by(97) {
        assert_eq!(t.get(k), Some(value_for(k)), "key {k}");
    }
    // Leaves are fully packed: node count is near the theoretical minimum.
    let report = t.check_consistency(true).unwrap();
    let cap = t.node_capacity() as usize;
    let min_leaves = (n as usize).div_ceil(cap);
    assert!(
        report.nodes < 2 * min_leaves + 8,
        "bulk load under-packed: {} nodes for {} keys (min leaves {})",
        report.nodes,
        n,
        min_leaves
    );
    // The loaded tree accepts the full write path afterwards.
    assert_eq!(t.insert(0x5555_5555, 42).unwrap(), None);
    assert!(t.remove(7));
    t.check_consistency(true).unwrap();
}

#[test]
fn bulk_load_flushes_once_per_line() {
    let (_p, t) = small_tree();
    let n = 10_000u64;
    stats::reset();
    t.bulk_load(&mut (1..=n).map(|k| (k, value_for(k))))
        .unwrap();
    let s = stats::take();
    // Every node is persisted exactly once: node_size/64 flushes per node
    // plus the root-pointer commit. With 512-byte nodes and 26-record
    // leaves that is well under one flush per record; loop-insertion costs
    // several per record.
    let per_key = s.flushes as f64 / n as f64;
    assert!(per_key < 1.0, "bulk load flushed {per_key} lines per key");
}

#[test]
fn bulk_load_tolerates_stragglers_and_falls_back_when_nonempty() {
    let (_p, t) = small_tree();
    // Out-of-order and duplicate items are routed through normal inserts.
    let items = [(10u64, 1u64), (20, 2), (15, 3), (20, 4), (30, 5)];
    let loaded = t.bulk_load(&mut items.iter().copied()).unwrap();
    assert_eq!(loaded, 4); // 10, 20, 15, 30 — the second 20 upserts
    assert_eq!(t.get(15), Some(3));
    assert_eq!(t.get(20), Some(4));
    t.check_consistency(true).unwrap();
    // Non-empty tree: bulk_load degrades to loop-insert and still counts
    // only fresh keys.
    let more = [(5u64, 6u64), (20, 7), (40, 8)];
    assert_eq!(t.bulk_load(&mut more.iter().copied()).unwrap(), 2);
    assert_eq!(t.get(20), Some(7));
    assert_eq!(t.len(), 6);
    t.check_consistency(true).unwrap();
    // Reserved values are rejected on the packed path…
    let (_p2, t2) = small_tree();
    assert!(t2.bulk_load(&mut [(1u64, 0u64)].iter().copied()).is_err());
    // …and on the non-empty fallback path.
    assert!(t.bulk_load(&mut [(90u64, 0u64)].iter().copied()).is_err());
    assert!(t
        .bulk_load(&mut [(91u64, u64::MAX)].iter().copied())
        .is_err());
    assert_eq!(t.get(90), None);
    assert_eq!(t.get(91), None);
}

#[test]
fn bulk_loaded_tree_survives_reopen() {
    let p = pool(64);
    let t = tree_with(&p, TreeOptions::new());
    t.bulk_load(&mut (1..=5000u64).map(|k| (k * 3, k))).unwrap();
    let meta = t.meta_offset();
    drop(t);
    let img = p.volatile_image();
    let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(64 << 20)).unwrap());
    let t2 = FastFairTree::open(Arc::clone(&p2), meta, TreeOptions::new()).unwrap();
    for k in (1..=5000u64).step_by(61) {
        assert_eq!(t2.get(k * 3), Some(k));
    }
    t2.check_consistency(true).unwrap();
}

#[test]
fn merged_leaves_are_recycled_for_reuse() {
    let (_p, t) = small_tree();
    for k in 1..=2000u64 {
        t.insert(k, k + 1).unwrap();
    }
    // Wipe a wide middle band so whole leaves empty and get unlinked.
    stats::reset();
    for k in 200..=1800u64 {
        assert!(t.remove(k));
    }
    let report = t.recover().unwrap();
    let snap = stats::take();
    // Every unlinked leaf was freed exactly once: either online by the
    // epoch collector riding the delete traffic, or by recover's flush
    // of whatever was still in limbo — the two paths partition the total.
    assert!(
        snap.nodes_recycled > 0,
        "no unlinked leaves were recycled: {report:?}"
    );
    assert_eq!(
        snap.nodes_recycled,
        snap.nodes_recycled_online + report.nodes_recycled as u64
    );
    // The free list serves the next allocations: inserting the band back
    // reuses recycled nodes instead of growing the pool.
    let high_water = t.pool().high_water();
    for k in 200..=400u64 {
        t.insert(k, k + 1).unwrap();
    }
    assert_eq!(
        t.pool().high_water(),
        high_water,
        "recycled nodes not reused"
    );
    t.check_consistency(true).unwrap();
}

/// The tentpole concurrency guarantee: a lock-free cursor running during
/// concurrent inserts (with splits) observes every key committed before its
/// seek, nothing duplicated, in strictly ascending order.
#[test]
fn cursor_during_concurrent_inserts_sees_committed_keys_once() {
    let p = pool(256);
    let t = Arc::new(tree_with(&p, TreeOptions::new().node_size(256)));
    let committed = generate_keys(8_000, KeyDist::Uniform, 79);
    for &k in &committed {
        t.insert(k, value_for(k)).unwrap();
    }
    let mut committed_sorted = committed.clone();
    committed_sorted.sort_unstable();
    let fresh = generate_keys(8_000, KeyDist::Uniform, 83);
    let committed_set: std::collections::HashSet<u64> = committed.iter().copied().collect();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            let fresh = &fresh;
            s.spawn(move || {
                for &k in fresh {
                    t.insert(k, value_for(k)).unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
        }
        for reader in 0..2 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            let committed_sorted = &committed_sorted;
            let committed_set = &committed_set;
            s.spawn(move || {
                let mut rounds = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Acquire) || rounds == 0 {
                    let mut c = t.cursor();
                    // Alternate full scans with mid-key seeks.
                    let start_rank = if rounds.is_multiple_of(2) {
                        0
                    } else {
                        (rounds * 997 + reader) % committed_sorted.len()
                    };
                    c.seek(committed_sorted[start_rank]);
                    let mut expected = committed_sorted[start_rank..].iter().copied();
                    let mut prev: Option<u64> = None;
                    while let Some((k, v)) = c.next() {
                        // Strictly ascending, never duplicated.
                        assert!(prev.is_none_or(|p| k > p), "cursor regressed at {k}");
                        prev = Some(k);
                        if committed_set.contains(&k) {
                            // Every pre-seek key must appear, in order.
                            assert_eq!(
                                expected.next(),
                                Some(k),
                                "cursor skipped a committed key before {k}"
                            );
                            assert_eq!(v, value_for(k));
                        }
                    }
                    assert_eq!(
                        expected.next(),
                        None,
                        "cursor missed committed keys at the tail"
                    );
                    rounds += 1;
                }
            });
        }
    });
    t.check_consistency(true).unwrap();
}

/// Regression: adjacent keys carrying the *same value* must all stay
/// visible. The paper's pointer-duplication validity test silently dropped
/// every entry whose value equalled its left neighbour's — the poison
/// sentinel protocol (see `layout`) detects shifts exactly instead.
#[test]
fn duplicate_values_across_keys_are_preserved() {
    let (_p, t) = small_tree();
    // Enough keys to force splits, all with one shared value, interleaved
    // so shifts land new entries between equal-valued neighbours.
    for k in (1..=600u64).step_by(2) {
        t.insert(k, 7).unwrap();
    }
    for k in (2..=600u64).step_by(2) {
        t.insert(k, 7).unwrap();
    }
    for k in 1..=600 {
        assert_eq!(t.get(k), Some(7), "key {k} lost its duplicated value");
    }
    assert_eq!(t.len(), 600);
    let mut out = Vec::new();
    t.range(0, u64::MAX, &mut out);
    assert_eq!(out.len(), 600);
    assert!(out.iter().all(|&(_, v)| v == 7));
    // Deletes around equal-valued neighbours must not take bystanders.
    for k in (3..=600u64).step_by(3) {
        assert!(t.remove(k), "key {k} missing before remove");
    }
    for k in 1..=600 {
        let expect = if k % 3 == 0 { None } else { Some(7) };
        assert_eq!(t.get(k), expect, "key {k} wrong after dup-value deletes");
    }
    t.check_consistency(true).unwrap();
}

/// Same regression for the bulk-load path: packed leaves with repeated
/// values must read back completely.
#[test]
fn bulk_load_preserves_duplicate_values() {
    let (_p, t) = small_tree();
    assert_eq!(t.bulk_load(&mut (1..=500).map(|k| (k, 9))).unwrap(), 500);
    for k in 1..=500 {
        assert_eq!(t.get(k), Some(9), "bulk-loaded key {k} lost its value");
    }
    assert_eq!(t.len(), 500);
    t.check_consistency(true).unwrap();
}

#[test]
fn ascending_inserts_split_correctly() {
    let (_p, t) = small_tree();
    let n = 5000u64;
    for k in 1..=n {
        t.insert(k, k + 1).unwrap();
    }
    assert!(t.height() >= 1);
    for k in 1..=n {
        assert_eq!(t.get(k), Some(k + 1), "key {k}");
    }
    t.check_consistency(true).unwrap();
}

#[test]
fn descending_inserts_exercise_slot_zero() {
    let (_p, t) = small_tree();
    let n = 3000u64;
    for k in (1..=n).rev() {
        t.insert(k, k + 1).unwrap();
    }
    for k in 1..=n {
        assert_eq!(t.get(k), Some(k + 1), "key {k}");
    }
    t.check_consistency(true).unwrap();
}

#[test]
fn random_inserts_and_lookups() {
    let (_p, t) = small_tree();
    let keys = generate_keys(20_000, KeyDist::Uniform, 7);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    for &k in &keys {
        assert_eq!(t.get(k), Some(value_for(k)));
    }
    assert_eq!(t.len(), keys.len());
    t.check_consistency(true).unwrap();
}

#[test]
fn deletes_interleaved_with_inserts() {
    let (_p, t) = small_tree();
    let keys = generate_keys(8000, KeyDist::Uniform, 13);
    let mut model = BTreeMap::new();
    for (i, &k) in keys.iter().enumerate() {
        t.insert(k, value_for(k)).unwrap();
        model.insert(k, value_for(k));
        if i % 3 == 0 {
            let victim = keys[i / 2];
            assert_eq!(t.remove(victim), model.remove(&victim).is_some());
        }
    }
    for (&k, &v) in &model {
        assert_eq!(t.get(k), Some(v), "key {k}");
    }
    assert_eq!(t.len(), model.len());
    t.check_consistency(true).unwrap();
}

#[test]
fn delete_all_keys_leaves_empty_tree() {
    let (_p, t) = small_tree();
    let keys = generate_keys(2000, KeyDist::DenseShuffled, 3);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    for &k in &keys {
        assert!(t.remove(k), "key {k}");
    }
    assert!(t.is_empty());
    for &k in &keys {
        assert_eq!(t.get(k), None);
    }
    t.check_consistency(true).unwrap();
}

#[test]
fn range_scan_matches_model() {
    let (_p, t) = small_tree();
    let keys = generate_keys(10_000, KeyDist::Uniform, 17);
    let mut model = BTreeMap::new();
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
        model.insert(k, value_for(k));
    }
    let mut sorted: Vec<u64> = keys.clone();
    sorted.sort_unstable();
    for (lo_i, span) in [(0usize, 50usize), (100, 1000), (5000, 3000), (9990, 100)] {
        let lo = sorted[lo_i];
        let hi = sorted.get(lo_i + span).copied().unwrap_or(u64::MAX);
        let mut got = Vec::new();
        t.range(lo, hi, &mut got);
        let want: Vec<(u64, u64)> = model.range(lo..hi).map(|(&k, &v)| (k, v)).collect();
        assert_eq!(got, want, "range [{lo}, {hi})");
    }
}

#[test]
fn full_iteration_is_sorted_and_complete() {
    let (_p, t) = small_tree();
    let keys = generate_keys(5000, KeyDist::Uniform, 23);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    let mut seen = Vec::new();
    t.for_each(|k, v| {
        assert_eq!(v, value_for(k));
        seen.push(k);
    });
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(seen, sorted);
}

#[test]
fn all_node_sizes_work() {
    for size in [256u32, 512, 1024, 2048, 4096] {
        let p = pool(64);
        let t = tree_with(&p, TreeOptions::new().node_size(size));
        let keys = generate_keys(3000, KeyDist::Uniform, u64::from(size));
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.get(k), Some(value_for(k)), "size {size} key {k}");
        }
        t.check_consistency(true).unwrap();
    }
}

#[test]
fn binary_search_variant_matches_linear() {
    let p = pool(64);
    let t = tree_with(&p, TreeOptions::new().search(InNodeSearch::Binary));
    let keys = generate_keys(5000, KeyDist::Uniform, 29);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    for &k in &keys {
        assert_eq!(t.get(k), Some(value_for(k)));
    }
    assert_eq!(
        t.get(keys[0].wrapping_add(1)).is_some(),
        keys.contains(&(keys[0].wrapping_add(1)))
    );
}

#[test]
fn leaflock_variant_works() {
    let p = pool(64);
    let t = tree_with(&p, TreeOptions::new().leaf_locks(true));
    assert_eq!(t.name(), "FAST+FAIR+LeafLock");
    let keys = generate_keys(3000, KeyDist::Uniform, 31);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    for &k in &keys {
        assert_eq!(t.get(k), Some(value_for(k)));
    }
    let mut out = Vec::new();
    t.range(0, u64::MAX, &mut out);
    assert_eq!(out.len(), keys.len());
}

#[test]
fn logging_variant_works_and_is_flush_heavier() {
    let p1 = pool(64);
    let fair = tree_with(&p1, TreeOptions::new());
    let p2 = pool(64);
    let logging = tree_with(&p2, TreeOptions::new().split(SplitStrategy::Logging));
    assert_eq!(logging.name(), "FAST+Logging");
    let keys = generate_keys(5000, KeyDist::Uniform, 37);

    stats::reset();
    for &k in &keys {
        fair.insert(k, value_for(k)).unwrap();
    }
    let fair_flushes = stats::take().flushes;

    stats::reset();
    for &k in &keys {
        logging.insert(k, value_for(k)).unwrap();
    }
    let logging_flushes = stats::take().flushes;

    for &k in &keys {
        assert_eq!(logging.get(k), Some(value_for(k)));
    }
    logging.check_consistency(true).unwrap();
    assert!(
        logging_flushes > fair_flushes,
        "logging {logging_flushes} vs fair {fair_flushes}"
    );
}

#[test]
fn flush_count_matches_paper_ballpark() {
    // §5.2: a 512-byte node spans 8 cache lines, so FAST needs at most 8
    // flushes and ~4 on average per insert (plus amortized split cost).
    let (_p, t) = small_tree();
    let keys = generate_keys(20_000, KeyDist::Uniform, 41);
    for &k in &keys[..10_000] {
        t.insert(k, value_for(k)).unwrap();
    }
    stats::reset();
    for &k in &keys[10_000..] {
        t.insert(k, value_for(k)).unwrap();
    }
    let s = stats::take();
    let per_insert = s.flushes as f64 / 10_000.0;
    assert!(
        (1.0..=8.0).contains(&per_insert),
        "avg flushes per insert = {per_insert}"
    );
}

#[test]
fn reopen_after_clean_shutdown() {
    let p = pool(64);
    let t = tree_with(&p, TreeOptions::new());
    let keys = generate_keys(4000, KeyDist::Uniform, 43);
    for &k in &keys {
        t.insert(k, value_for(k)).unwrap();
    }
    let meta = t.meta_offset();
    drop(t);
    let img = p.volatile_image();
    let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(64 << 20)).unwrap());
    let t2 = FastFairTree::open(Arc::clone(&p2), meta, TreeOptions::new()).unwrap();
    for &k in &keys {
        assert_eq!(t2.get(k), Some(value_for(k)));
    }
    t2.check_consistency(true).unwrap();
    // The reopened tree accepts writes.
    t2.insert(keys[0].wrapping_add(2), 777).unwrap();
}

#[test]
fn open_rejects_bad_magic() {
    let p = pool(1);
    let off = p.alloc(64, 64).unwrap();
    assert!(FastFairTree::open(Arc::clone(&p), off, TreeOptions::new()).is_err());
}

#[test]
fn recover_on_healthy_tree_is_noop() {
    let (_p, t) = small_tree();
    for k in 1..2000u64 {
        t.insert(k, k + 1).unwrap();
    }
    let r = t.recover().unwrap();
    assert_eq!(r.garbage_removed, 0);
    assert_eq!(r.splits_completed, 0);
    assert_eq!(r.siblings_attached, 0);
    t.check_consistency(true).unwrap();
    for k in 1..2000u64 {
        assert_eq!(t.get(k), Some(k + 1));
    }
}

#[test]
fn concurrent_inserts_are_linearizable() {
    let p = pool(256);
    let t = Arc::new(tree_with(&p, TreeOptions::new()));
    let keys = generate_keys(40_000, KeyDist::Uniform, 47);
    let chunks = pmindex::workload::partition(&keys, 4);
    std::thread::scope(|s| {
        for chunk in &chunks {
            let t = Arc::clone(&t);
            s.spawn(move || {
                for &k in chunk {
                    t.insert(k, value_for(k)).unwrap();
                }
            });
        }
    });
    for &k in &keys {
        assert_eq!(t.get(k), Some(value_for(k)));
    }
    t.check_consistency(true).unwrap();
}

#[test]
fn concurrent_readers_during_writes_see_committed_keys() {
    let p = pool(256);
    let t = Arc::new(tree_with(&p, TreeOptions::new()));
    let preload = generate_keys(20_000, KeyDist::Uniform, 53);
    for &k in &preload {
        t.insert(k, value_for(k)).unwrap();
    }
    let fresh = generate_keys(20_000, KeyDist::Uniform, 59);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                for &k in &fresh {
                    t.insert(k, value_for(k)).unwrap();
                }
                stop.store(true, std::sync::atomic::Ordering::Release);
            });
        }
        for _ in 0..2 {
            let t = Arc::clone(&t);
            let stop = Arc::clone(&stop);
            let preload = &preload;
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let k = preload[i % preload.len()];
                    // Preloaded keys must always be visible to lock-free
                    // readers, whatever the concurrent writer is doing.
                    assert_eq!(t.get(k), Some(value_for(k)), "lost key {k}");
                    i += 1;
                }
            });
        }
    });
    t.check_consistency(true).unwrap();
}

#[test]
fn concurrent_mixed_workload() {
    let p = pool(256);
    let t = Arc::new(tree_with(&p, TreeOptions::new()));
    let preload = generate_keys(10_000, KeyDist::Uniform, 61);
    for &k in &preload {
        t.insert(k, value_for(k)).unwrap();
    }
    let fresh = generate_keys(8_000, KeyDist::Uniform, 67);
    let chunks = pmindex::workload::partition(&fresh, 4);
    std::thread::scope(|s| {
        for (id, chunk) in chunks.iter().enumerate() {
            let t = Arc::clone(&t);
            let preload = &preload;
            s.spawn(move || {
                let ops = pmindex::workload::mixed_ops(preload, chunk, chunk.len() / 4, id as u64);
                for op in ops {
                    match op {
                        pmindex::workload::Op::Insert(k) => {
                            assert_eq!(t.insert(k, value_for(k)).unwrap(), None);
                        }
                        pmindex::workload::Op::Search(k) => {
                            assert_eq!(t.get(k), Some(value_for(k)));
                        }
                        pmindex::workload::Op::Delete(k) => {
                            assert!(t.remove(k));
                        }
                        pmindex::workload::Op::Scan(lo, hi) => {
                            let mut c = t.cursor();
                            c.seek(lo);
                            while let Some((k, _)) = c.next() {
                                if k >= hi {
                                    break;
                                }
                            }
                        }
                    }
                }
            });
        }
    });
    t.check_consistency(true).unwrap();
}

/// The four layout variants of the microarchitecture sweep: baseline,
/// fingerprinted probes, circular record frame, and both combined.
fn geometry_variants() -> [(&'static str, TreeOptions); 4] {
    [
        ("base", TreeOptions::new()),
        ("fp", TreeOptions::new().fingerprints(true)),
        ("circ", TreeOptions::new().circular(true)),
        (
            "fp+circ",
            TreeOptions::new().fingerprints(true).circular(true),
        ),
    ]
}

#[test]
fn layout_variant_names_and_capacity() {
    let p = pool(64);
    let base = tree_with(&p, TreeOptions::new());
    let fp = tree_with(&p, TreeOptions::new().fingerprints(true));
    let circ = tree_with(&p, TreeOptions::new().circular(true));
    let both = tree_with(&p, TreeOptions::new().fingerprints(true).circular(true));
    assert_eq!(base.name(), "FAST+FAIR");
    assert_eq!(fp.name(), "FAST+FAIR+FP");
    assert_eq!(circ.name(), "FAST+FAIR+Circ");
    assert_eq!(both.name(), "FAST+FAIR+FP+Circ");
    // Fingerprints cost whole reserved cache lines of record capacity.
    assert!(fp.node_capacity() < base.node_capacity());
    assert_eq!(circ.node_capacity(), base.node_capacity());
    assert_eq!(both.node_capacity(), fp.node_capacity());
}

/// Every layout variant matches a model under the shapes that stress its
/// mechanics: random churn, descending inserts (slot-0 / head-retreat
/// path), low-slot deletes (head-advance path), and equal adjacent values.
#[test]
fn layout_variants_match_model() {
    for (name, opts) in geometry_variants() {
        for node_size in [256u32, 512, 1024] {
            let p = pool(128);
            let t = tree_with(&p, opts.node_size(node_size));
            let mut model = BTreeMap::new();
            // Descending inserts drive every insert through the lowest
            // slot — the circular head-retreat fast path.
            for k in (1..=2000u64).rev() {
                t.insert(k, value_for(k)).unwrap();
                model.insert(k, value_for(k));
            }
            // Random churn with equal adjacent values (fingerprint
            // collisions on value are irrelevant; equal *values* stress the
            // validity test).
            let keys = generate_keys(4000, KeyDist::Uniform, u64::from(node_size) + 7);
            for (i, &k) in keys.iter().enumerate() {
                t.insert(k, 7).unwrap();
                model.insert(k, 7);
                if i % 3 == 0 {
                    let victim = keys[i / 2];
                    assert_eq!(
                        t.remove(victim),
                        model.remove(&victim).is_some(),
                        "{name}/{node_size}: remove {victim}"
                    );
                }
            }
            // Low-slot deletes: removing ascending prefixes hits d < cnt/2.
            let low: Vec<u64> = model.keys().copied().take(500).collect();
            for k in low {
                assert!(t.remove(k), "{name}/{node_size}: low delete {k}");
                model.remove(&k);
            }
            for (&k, &v) in &model {
                assert_eq!(t.get(k), Some(v), "{name}/{node_size}: key {k}");
            }
            assert_eq!(t.len(), model.len(), "{name}/{node_size}");
            let mut got = Vec::new();
            t.range(0, u64::MAX, &mut got);
            let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            assert_eq!(got, want, "{name}/{node_size}: range mismatch");
            t.check_consistency(true)
                .unwrap_or_else(|e| panic!("{name}/{node_size}: {e}"));
        }
    }
}

/// The strategy bits in the superblock reconstruct the geometry on open —
/// a tree created with fingerprints/circular reopens correctly even when
/// the caller passes default options.
#[test]
fn layout_variants_survive_reopen() {
    for (name, opts) in geometry_variants() {
        let p = pool(64);
        let t = tree_with(&p, opts);
        let keys = generate_keys(3000, KeyDist::Uniform, 89);
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        let expect_name = t.name().to_string();
        let meta = t.meta_offset();
        drop(t);
        let img = p.volatile_image();
        let p2 = Arc::new(Pool::from_image(&img, PoolConfig::new().size(64 << 20)).unwrap());
        let t2 = FastFairTree::open(Arc::clone(&p2), meta, TreeOptions::new()).unwrap();
        assert_eq!(t2.name(), expect_name, "{name}: geometry lost on reopen");
        for &k in &keys {
            assert_eq!(t2.get(k), Some(value_for(k)), "{name}: key {k}");
        }
        t2.recover().unwrap();
        for &k in &keys {
            assert_eq!(t2.get(k), Some(value_for(k)), "{name}: post-recover {k}");
        }
        t2.check_consistency(true).unwrap();
    }
}

/// Bulk load packs fingerprints and the variants accept the full write
/// path afterwards.
#[test]
fn layout_variants_bulk_load() {
    for (name, opts) in geometry_variants() {
        let p = pool(64);
        let t = tree_with(&p, opts);
        let n = 8000u64;
        t.bulk_load(&mut (1..=n).map(|k| (k, value_for(k))))
            .unwrap();
        for k in (1..=n).step_by(13) {
            assert_eq!(t.get(k), Some(value_for(k)), "{name}: bulk key {k}");
        }
        // The packed tree accepts the full write path afterwards.
        assert_eq!(t.insert(n + 1, 42).unwrap(), None);
        assert!(t.remove(7));
        t.check_consistency(true).unwrap();
    }
}

/// Lock-free readers stay correct under concurrent writers on every
/// variant — probes revalidate seal/head/switch-counter, scans retry.
#[test]
fn layout_variants_concurrent_readers() {
    for (name, opts) in geometry_variants() {
        let p = pool(256);
        let t = Arc::new(tree_with(&p, opts));
        let preload = generate_keys(8_000, KeyDist::Uniform, 101);
        for &k in &preload {
            t.insert(k, value_for(k)).unwrap();
        }
        let fresh = generate_keys(8_000, KeyDist::Uniform, 103);
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                let fresh = &fresh;
                s.spawn(move || {
                    for (i, &k) in fresh.iter().enumerate() {
                        t.insert(k, value_for(k)).unwrap();
                        if i % 4 == 0 {
                            t.remove(fresh[i / 2]);
                        }
                    }
                    stop.store(true, std::sync::atomic::Ordering::Release);
                });
            }
            for _ in 0..2 {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                let preload = &preload;
                s.spawn(move || {
                    let mut i = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let k = preload[i % preload.len()];
                        assert_eq!(t.get(k), Some(value_for(k)), "{name}: lost key {k}");
                        i += 1;
                    }
                });
            }
        });
        t.check_consistency(true).unwrap();
    }
}

/// Delete-while-scanning: cursors running concurrently with deletes never
/// report a key twice or out of order, on every variant (the shape that
/// stresses the circular head flip against right-to-left readers).
#[test]
fn layout_variants_delete_while_scanning() {
    for (name, opts) in geometry_variants() {
        let p = pool(128);
        let t = Arc::new(tree_with(&p, opts.node_size(256)));
        let keep: Vec<u64> = (1..=4000u64).filter(|k| k % 2 == 1).collect();
        for k in 1..=4000u64 {
            t.insert(k, value_for(k)).unwrap();
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    for k in (2..=4000u64).step_by(2) {
                        assert!(t.remove(k), "{name}: delete {k}");
                    }
                    stop.store(true, std::sync::atomic::Ordering::Release);
                });
            }
            for _ in 0..2 {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                let keep = &keep;
                s.spawn(move || {
                    let mut rounds = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) || rounds == 0 {
                        let mut c = t.cursor();
                        c.seek(0);
                        let mut expected = keep.iter().copied();
                        let mut prev: Option<u64> = None;
                        while let Some((k, v)) = c.next() {
                            assert!(
                                prev.is_none_or(|p| k > p),
                                "{name}: cursor regressed at {k}"
                            );
                            prev = Some(k);
                            if k % 2 == 1 {
                                // Odd keys are never deleted: all present,
                                // in order.
                                assert_eq!(
                                    expected.next(),
                                    Some(k),
                                    "{name}: scan skipped surviving key before {k}"
                                );
                                assert_eq!(v, value_for(k));
                            }
                        }
                        assert_eq!(expected.next(), None, "{name}: scan missed tail keys");
                        rounds += 1;
                    }
                });
            }
        });
        t.check_consistency(true).unwrap();
    }
}

/// The fingerprint lever, measured: sealed probes touch far fewer cache
/// lines per lookup than the linear scan (the win grows with node size —
/// one fingerprint line covers 64 records).
#[test]
fn fingerprints_cut_probe_line_touches() {
    let n = 4000u64;
    let mut per_variant = Vec::new();
    for fp in [false, true] {
        let p = pool(64);
        let t = tree_with(&p, TreeOptions::new().node_size(4096).fingerprints(fp));
        for k in 1..=n {
            t.insert(k, value_for(k)).unwrap();
        }
        stats::reset();
        for k in 1..=n {
            assert_eq!(t.get(k), Some(value_for(k)));
        }
        let s = stats::take();
        per_variant.push((s.serial_misses + s.parallel_lines) as f64 / n as f64);
    }
    let (base, fp) = (per_variant[0], per_variant[1]);
    assert!(
        fp < base / 2.0,
        "fingerprints should cut lines touched per lookup: base {base:.2}/op vs fp {fp:.2}/op"
    );
}

/// The circular lever, measured: taking the short side cuts the mean
/// shift distance roughly in half on uniform-random churn.
#[test]
fn circular_frame_cuts_shift_distance() {
    let mut per_variant = Vec::new();
    for circ in [false, true] {
        let p = pool(128);
        let t = tree_with(&p, TreeOptions::new().circular(circ));
        let keys = generate_keys(12_000, KeyDist::Uniform, 107);
        stats::reset();
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        for &k in keys.iter().step_by(2) {
            assert!(t.remove(k));
        }
        let s = stats::take();
        assert!(s.shift_ops > 0);
        per_variant.push(s.shift_steps as f64 / s.shift_ops as f64);
    }
    let (base, circ) = (per_variant[0], per_variant[1]);
    assert!(
        circ < base * 0.75,
        "circular frame should cut mean shift distance: base {base:.2} vs circ {circ:.2}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_tree_matches_btreemap(ops in prop::collection::vec(
        (0u8..3, 1u64..500), 1..400)) {
        let p = pool(16);
        let t = tree_with(&p, TreeOptions::new().node_size(256));
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, key) in ops {
            match op {
                0 => {
                    t.insert(key, value_for(key)).unwrap();
                    model.insert(key, value_for(key));
                }
                1 => {
                    prop_assert_eq!(t.remove(key), model.remove(&key).is_some());
                }
                _ => {
                    prop_assert_eq!(t.get(key), model.get(&key).copied());
                }
            }
        }
        // Full-content comparison at the end.
        let mut got = Vec::new();
        t.range(0, u64::MAX, &mut got);
        let want: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
        prop_assert!(t.check_consistency(true).is_ok());
    }

    #[test]
    fn prop_range_bounds(keys in prop::collection::btree_set(1u64..10_000, 1..300),
                         lo in 0u64..10_000, span in 0u64..2_000) {
        let p = pool(16);
        let t = tree_with(&p, TreeOptions::new().node_size(256));
        for &k in &keys {
            t.insert(k, value_for(k)).unwrap();
        }
        let hi = lo.saturating_add(span);
        let mut got = Vec::new();
        t.range(lo, hi, &mut got);
        let want: Vec<(u64, u64)> = keys.iter()
            .filter(|&&k| k >= lo && k < hi)
            .map(|&k| (k, value_for(k)))
            .collect();
        prop_assert_eq!(got, want);
    }
}
