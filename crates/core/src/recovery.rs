//! Eager recovery and structural consistency checking.
//!
//! FAST+FAIR needs no recovery pass for correctness — that is the point of
//! the paper: readers tolerate every crash state and writers repair nodes
//! lazily. [`FastFairTree::recover`] is the *eager* version of that lazy
//! repair, useful right after a crash to reclaim garbage slots, finish
//! half-done splits and re-attach dangling siblings in one sweep; it also
//! resets the volatile lock words and recomputes count hints.
//!
//! [`FastFairTree::check_consistency`] is the test oracle: it walks the
//! whole structure and verifies the B+-tree invariants, in either *strict*
//! mode (a fully repaired tree: no garbage entries, no dangling siblings,
//! no duplicated upper halves) or *tolerant* mode (a post-crash tree:
//! transient artifacts are counted but allowed, as long as readers would
//! still return correct results).

use std::collections::BTreeSet;

use pmem::{PmOffset, NULL_OFFSET};
use pmindex::IndexError;

use crate::layout::NodeRef;
use crate::lock::WriteGuard;
use crate::tree::FastFairTree;

/// Summary of what [`FastFairTree::recover`] repaired.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Nodes visited.
    pub nodes_visited: usize,
    /// Garbage (duplicate-pointer) entries compacted away.
    pub garbage_removed: usize,
    /// Splits whose truncation store was re-issued.
    pub splits_completed: usize,
    /// Dangling siblings inserted into their parent level.
    pub siblings_attached: usize,
    /// Undo-log rollbacks performed (logging strategy only).
    pub log_rollbacks: usize,
    /// Trivial internal roots collapsed onto their only child.
    pub roots_collapsed: usize,
    /// Empty, unparented leaves whose unlink was completed (§4.2 merge).
    pub merges_completed: usize,
    /// Node blocks returned to the pool's free list (merged-away leaves,
    /// both freshly completed and previously retired by the merge path).
    pub nodes_recycled: usize,
}

/// Structural statistics returned by a successful consistency check.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Total nodes reachable.
    pub nodes: usize,
    /// Live (valid) leaf entries.
    pub entries: usize,
    /// Garbage entries observed (0 in strict mode).
    pub garbage_entries: usize,
    /// Nodes reachable only via sibling pointers (0 in strict mode).
    pub dangling_siblings: usize,
    /// Tree height (root level).
    pub height: u32,
}

/// A violated B+-tree invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConsistencyError {
    /// Valid keys within a node are not strictly ascending.
    UnsortedNode {
        /// Offending node offset.
        node: PmOffset,
    },
    /// A child's level is not one less than its parent's.
    BadChildLevel {
        /// Parent node offset.
        parent: PmOffset,
        /// Child node offset.
        child: PmOffset,
    },
    /// Keys across the leaf chain are not ascending (beyond the tolerated
    /// split-duplication pattern).
    LeafChainDisorder {
        /// Leaf where the violation was detected.
        leaf: PmOffset,
    },
    /// A node contains transient artifacts but strict mode was requested.
    NotStrict {
        /// Garbage entries found.
        garbage: usize,
        /// Dangling siblings found.
        dangling: usize,
    },
    /// A cycle or out-of-bounds link was detected.
    BrokenLink {
        /// Node whose link is broken.
        node: PmOffset,
    },
}

impl std::fmt::Display for ConsistencyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConsistencyError::UnsortedNode { node } => write!(f, "unsorted node at {node:#x}"),
            ConsistencyError::BadChildLevel { parent, child } => {
                write!(f, "bad child level: parent {parent:#x}, child {child:#x}")
            }
            ConsistencyError::LeafChainDisorder { leaf } => {
                write!(f, "leaf chain disorder at {leaf:#x}")
            }
            ConsistencyError::NotStrict { garbage, dangling } => write!(
                f,
                "transient artifacts present: {garbage} garbage entries, {dangling} dangling siblings"
            ),
            ConsistencyError::BrokenLink { node } => write!(f, "broken link at {node:#x}"),
        }
    }
}

impl std::error::Error for ConsistencyError {}

impl FastFairTree {
    /// Offsets of every node on the sibling chain of `level`, starting from
    /// the leftmost node reachable from the root.
    pub(crate) fn level_chain(&self, level: u32) -> Vec<PmOffset> {
        let mut node = self.node(self.root());
        if node.level() < level {
            return Vec::new();
        }
        while node.level() > level {
            node = self.node(node.leftmost());
        }
        let mut chain = Vec::new();
        let mut seen = BTreeSet::new();
        let mut off = node.offset();
        while off != NULL_OFFSET && seen.insert(off) {
            chain.push(off);
            off = self.node(off).sibling();
        }
        chain
    }

    /// Eagerly repairs every transient artifact a crash may have left:
    /// resets lock words, rolls back the undo log (logging strategy),
    /// completes truncations, compacts garbage entries, re-attaches
    /// dangling siblings and grows the root over a split root.
    ///
    /// Safe to call on a healthy tree (idempotent, reports all zeros).
    /// Must not run concurrently with other operations.
    ///
    /// # Errors
    ///
    /// Propagates pool exhaustion if re-attaching a sibling needs a new
    /// node.
    pub fn recover(&self) -> Result<RecoveryReport, IndexError> {
        let mut report = RecoveryReport::default();
        if self.pool.load_u64(self.meta + crate::tree::META_LOG_HEAD) != NULL_OFFSET {
            self.undo_log_rollback();
            report.log_rollbacks = 1;
        }
        // Reset the superblock lock word.
        self.pool
            .store_u64_volatile(self.meta + crate::tree::META_LOCK, 0);

        // Grow the root while it has a sibling (a crash can interrupt a
        // root split before the new root is published).
        loop {
            let root = self.node(self.root());
            if root.sibling() == NULL_OFFSET {
                break;
            }
            // Reset the lock word before locking through the normal path.
            self.pool.store_u64_volatile(root.lock_word_off(), 0);
            let sib = root.sibling();
            crate::split::ensure_parent_entry(self, sib, root.level() + 1)?;
            report.siblings_attached += 1;
        }

        let height = self.node(self.root()).level();
        for level in (0..=height).rev() {
            let chain = self.level_chain(level);
            // First pass: per-node repair.
            for &off in &chain {
                report.nodes_visited += 1;
                let node = self.node(off);
                self.pool.store_u64_volatile(node.lock_word_off(), 0);
                let guard = WriteGuard::lock(&self.pool, node.lock_word_off());
                let before_garbage = count_garbage(node);
                let had_overlap = split_overlap(self, node);
                crate::delete::repair_node_locked(self, node);
                node.set_count_hint(node.count_records());
                if node.geom().fingerprints && node.is_leaf() && !node.fp_sealed() {
                    // A crash between unseal and reseal left the seal
                    // durably broken even though the records needed no
                    // repair; probes would stay disabled on this leaf
                    // forever. Recovery is quiescent, so rebuild + re-arm.
                    node.rebuild_fps();
                    node.fp_reseal();
                }
                report.garbage_removed += before_garbage;
                if had_overlap {
                    report.splits_completed += 1;
                }
                guard.unlock();
            }
            // Second pass: unreferenced chain nodes are either dangling
            // split siblings (re-attach them to the parent) or the residue
            // of an interrupted merge — empty and unparented — whose
            // unlink we complete here (§4.2: "we check if the sibling node
            // can be merged with its left node. If not, we insert the
            // pointer to the sibling node into the parent node").
            if level < height {
                let referenced: BTreeSet<PmOffset> = self
                    .level_chain(level + 1)
                    .into_iter()
                    .flat_map(|p| {
                        let parent = self.node(p);
                        let mut kids = vec![parent.leftmost()];
                        kids.extend(parent.valid_entries().into_iter().map(|(_, c)| c));
                        kids
                    })
                    .collect();
                let mut prev_kept: Option<PmOffset> = None;
                for (i, &off) in chain.iter().enumerate() {
                    if referenced.contains(&off) {
                        prev_kept = Some(off);
                        continue;
                    }
                    let node = self.node(off);
                    if node.first_key().is_none() && i > 0 {
                        // Complete the merge: bypass the empty leaf from
                        // the last node that stays in the chain.
                        if let Some(left_off) = prev_kept {
                            let left = self.node(left_off);
                            if left.sibling() == off {
                                left.set_sibling(node.sibling());
                                self.pool.persist(left.sibling_field_off(), 8);
                                node.mark_deleted();
                                report.merges_completed += 1;
                                // Recovery is quiescent by contract: the
                                // block can be recycled immediately.
                                self.retire_node(off);
                                continue;
                            }
                        }
                    }
                    crate::split::ensure_parent_entry(self, off, level + 1)?;
                    report.siblings_attached += 1;
                    prev_kept = Some(off);
                }
            }
        }
        report.roots_collapsed = self.shrink_root();
        // Quiescent point: return every retired leaf (from live merges and
        // the pass above) to the pool's free list.
        report.nodes_recycled = self.reclaim_retired();
        Ok(report)
    }

    /// Verifies the B+-tree invariants.
    ///
    /// In `strict` mode any transient artifact (garbage entry, dangling
    /// sibling, duplicated upper half) is an error; in tolerant mode they
    /// are merely counted — that is the state the paper's readers are
    /// guaranteed to tolerate.
    ///
    /// # Errors
    ///
    /// The first violated invariant found.
    pub fn check_consistency(&self, strict: bool) -> Result<ConsistencyReport, ConsistencyError> {
        let mut report = ConsistencyReport::default();
        let root = self.node(self.root());
        report.height = root.level();

        let mut garbage = 0usize;
        let mut dangling = 0usize;

        for level in (0..=report.height).rev() {
            let chain = self.level_chain(level);
            if chain.is_empty() {
                return Err(ConsistencyError::BrokenLink { node: self.root() });
            }
            let mut prev_last: Option<u64> = None;
            for &off in &chain {
                report.nodes += 1;
                let node = self.node(off);
                if node.level() != level {
                    return Err(ConsistencyError::BrokenLink { node: off });
                }
                let entries = node.valid_entries();
                // Strictly ascending within the node.
                for w in entries.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(ConsistencyError::UnsortedNode { node: off });
                    }
                }
                garbage += count_garbage(node);
                // Chain order: each node's first key must exceed the
                // previous node's last key — except for the tolerated
                // "virtual single node" overlap of an in-flight split.
                if let (Some(pl), Some((first, _))) = (prev_last, entries.first()) {
                    // In tolerant mode an overlap is accepted: it is the
                    // suffix-duplicate of the previous node left by an
                    // in-flight split (split state (2)).
                    if *first <= pl && strict {
                        return Err(ConsistencyError::LeafChainDisorder { leaf: off });
                    }
                }
                if let Some((last, _)) = entries.last() {
                    prev_last = Some(*last);
                }
                // Child levels.
                if level > 0 {
                    let mut children = vec![node.leftmost()];
                    children.extend(entries.iter().map(|&(_, c)| c));
                    for c in children {
                        if c == NULL_OFFSET {
                            return Err(ConsistencyError::BrokenLink { node: off });
                        }
                        let child = self.node(c);
                        if child.level() != level - 1 {
                            return Err(ConsistencyError::BadChildLevel {
                                parent: off,
                                child: c,
                            });
                        }
                    }
                }
                if level == 0 {
                    report.entries += entries.len();
                }
            }
            // Dangling-sibling count: nodes not referenced from above.
            if level < report.height {
                let referenced: BTreeSet<PmOffset> = self
                    .level_chain(level + 1)
                    .into_iter()
                    .flat_map(|p| {
                        let parent = self.node(p);
                        let mut kids = vec![parent.leftmost()];
                        kids.extend(parent.valid_entries().into_iter().map(|(_, c)| c));
                        kids
                    })
                    .collect();
                dangling += chain.iter().filter(|off| !referenced.contains(off)).count();
            }
        }
        if self.node(self.root()).sibling() != NULL_OFFSET {
            dangling += 1;
        }

        report.garbage_entries = garbage;
        report.dangling_siblings = dangling;
        if strict && (garbage > 0 || dangling > 0) {
            return Err(ConsistencyError::NotStrict { garbage, dangling });
        }
        Ok(report)
    }
}

/// Counts garbage entries before the terminator: poisoned slots and exact
/// adjacent duplicates (the two residues of an interrupted shift).
fn count_garbage(node: NodeRef<'_>) -> usize {
    let mut n = 0;
    let mut i = 0u16;
    while i <= node.capacity() {
        let p = node.ptr(i);
        if p == NULL_OFFSET {
            break;
        }
        if p == crate::layout::INVALID_PTR || (i > 0 && node.key(i) == node.key(i - 1)) {
            n += 1;
        }
        i += 1;
    }
    n
}

/// True if the node still contains keys that belong to its right sibling
/// (a split interrupted between linking and truncation).
fn split_overlap(tree: &FastFairTree, node: NodeRef<'_>) -> bool {
    let sib = node.sibling();
    if sib == NULL_OFFSET {
        return false;
    }
    match (
        node.valid_entries().last().map(|&(k, _)| k),
        tree.node(sib).first_key(),
    ) {
        (Some(last), Some(sfk)) => last >= sfk,
        _ => false,
    }
}
