//! Lock-free leaf search (Algorithm 3) and leaf-entry reads.
//!
//! Readers never latch a node. Instead they:
//!
//! 1. read the node's `switch_counter` and scan **left to right** if it is
//!    even (the last writer was inserting, shifting entries right) or
//!    **right to left** if odd (the last writer was deleting, shifting
//!    left) — scanning in the same direction as the writer guarantees no
//!    entry is missed, though one may be seen twice;
//! 2. skip *invalid* entries — those whose pointer is the
//!    [`INVALID_PTR`] poison a shift stores before rewriting a slot
//!    (§3.1; see the deviation note in `layout` for why poison replaces
//!    the paper's pointer-duplication test);
//! 3. re-read the switch counter, retrying if a writer shifted this node
//!    during the scan (every shift bumps the counter).
//!
//! A reader that falls off the right edge of a node consults the sibling
//! pointer (B-link), which also covers the "virtual single node" state of a
//! half-finished FAIR split.

use pmem::NULL_OFFSET;
use pmindex::{Key, Value};

use crate::layout::{fp_hash, fp_lines, NodeRef, INVALID_PTR};
use crate::tree::FastFairTree;

/// Lock-free exact-match search within one leaf (Algorithm 3).
///
/// Returns the value for `key` or `None` if it is not in this node (the
/// caller then consults the sibling pointer).
///
/// When the leaf's fingerprint array is sealed, the scan probes the packed
/// fingerprint lines first and touches a record's cache line only on a
/// fingerprint hit; a mutating writer breaks the seal *and* bumps the
/// switch counter, so the ordinary recheck-and-retry protocol also covers
/// probes against a concurrently unsealed array.
pub(crate) fn leaf_search_linear(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    key: Key,
) -> Option<Value> {
    let cap = tree.cap;
    let mut node = node;
    loop {
        let sc = node.switch_counter();
        if node.fp_sealed() {
            let ret = fp_probe(tree, &node, key);
            if node.switch_counter() == sc && node.head_unchanged() && node.fp_sealed() {
                return ret;
            }
            node.reframe();
            std::hint::spin_loop();
            continue;
        }
        let mut ret: Option<Value> = None;
        let mut scanned: u16 = 0;
        if sc.is_multiple_of(2) {
            // Scan left to right, following the insert shift direction.
            let mut i: u16 = 0;
            while i <= cap {
                let p = node.ptr(i);
                if p == NULL_OFFSET {
                    break;
                }
                scanned = i + 1;
                if p != INVALID_PTR && node.key(i) == key {
                    // Re-read the pointer: the slot may have been poisoned
                    // and rewritten for a different key since `p` was read,
                    // in which case the key match above was against the new
                    // occupant and `p` is stale.
                    if node.ptr(i) == p {
                        ret = Some(p);
                        break;
                    }
                }
                i += 1;
            }
        } else {
            // Scan right to left, following the delete shift direction.
            let mut i = cap.min(node.count_hint().saturating_add(2)).min(cap);
            scanned = i + 1;
            loop {
                let p = node.ptr(i);
                if p != NULL_OFFSET && p != INVALID_PTR && node.key(i) == key {
                    // Re-read the pointer (same staleness guard as the
                    // forward scan above).
                    if node.ptr(i) == p {
                        ret = Some(p);
                        break;
                    }
                }
                if i == 0 {
                    break;
                }
                i -= 1;
            }
        }
        node.charge_linear_scan(scanned);
        if node.switch_counter() == sc && node.head_unchanged() {
            return ret;
        }
        // A writer changed shift direction (or flipped the circular frame)
        // mid-scan: retry (Algorithm 3, the `until prev_switch =
        // node.switch` loop).
        node.reframe();
        std::hint::spin_loop();
    }
}

/// One fingerprint-guided probe pass over a sealed leaf. Only called while
/// the seal is (volatively) intact; the caller revalidates the switch
/// counter, head and seal afterwards and falls back to the linear scan on
/// any movement.
///
/// A sealed array is exact: every valid record's slot carries `fp_hash` of
/// its key and every slot above the terminator carries 0, so a miss proves
/// absence and a hit only needs one record line to verify. Stale poison
/// slots below the terminator may carry a nonzero fingerprint; the pointer
/// validity check rejects them.
fn fp_probe(tree: &FastFairTree, node: &NodeRef<'_>, key: Key) -> Option<Value> {
    let h = fp_hash(key);
    let mut ret = None;
    for i in 0..node.slots() {
        if node.fp(i) != h {
            continue;
        }
        // Candidate: touch the record line and verify.
        tree.pool.charge_serial_reads(1);
        let p = node.ptr(i);
        if p != NULL_OFFSET && p != INVALID_PTR && node.key(i) == key && node.ptr(i) == p {
            ret = Some(p);
            break;
        }
    }
    // The fingerprint lines themselves stream as adjacent parallel reads.
    tree.pool
        .charge_parallel_lines(fp_lines(node.node_size()) as u32);
    ret
}

/// Binary exact-match search within one leaf.
///
/// Only sound when no writer is concurrently shifting this node — the
/// reason the paper's lock-free design is restricted to linear search (§4).
/// Exposed for the single-threaded Fig. 3 comparison.
pub(crate) fn leaf_search_binary(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    key: Key,
) -> Option<Value> {
    let cnt = node.count_records();
    if cnt == 0 {
        return None;
    }
    // Each probe is a dependent (serial) cache miss: binary search defeats
    // the prefetcher, which is why it loses below 4 KB nodes (§5.2).
    let probes = (u32::from(cnt) * 16 / 64).max(1).ilog2() + 1;
    tree.pool.charge_serial_reads(probes);
    let (mut lo, mut hi) = (0u16, cnt);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if node.key(mid) < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    if lo < cnt && node.key(lo) == key && node.entry_valid(lo) {
        Some(node.ptr(lo))
    } else {
        None
    }
}

/// Reads the valid `(key, value)` entries of a leaf with the lock-free
/// retry protocol; used by range scans and the full-tree iterator.
///
/// Entries are returned in slot order. During a shift the same key can
/// transiently occupy two adjacent slots as an exact duplicate (same
/// value); the key dedup below keeps one of them, and the switch-counter
/// re-check discards any scan that overlapped a shift.
pub(crate) fn read_leaf_entries(tree: &FastFairTree, node: NodeRef<'_>) -> Vec<(Key, Value)> {
    let cap = tree.cap;
    let mut node = node;
    loop {
        let sc = node.switch_counter();
        let mut out = Vec::new();
        let mut i: u16 = 0;
        while i <= cap {
            let p = node.ptr(i);
            if p == NULL_OFFSET {
                break;
            }
            if p != INVALID_PTR {
                let k = node.key(i);
                if node.ptr(i) == p {
                    out.push((k, p));
                }
            }
            i += 1;
        }
        node.charge_linear_scan(i);
        if node.switch_counter() == sc && node.head_unchanged() {
            // A crashed shift can leave an entry twice at adjacent slots
            // (an exact duplicate — same key, same value); keep one
            // occurrence of each key.
            out.dedup_by(|b, a| a.0 == b.0);
            return out;
        }
        node.reframe();
        std::hint::spin_loop();
    }
}
