//! FAIR — Failure-Atomic In-place Rebalance (Algorithm 2) — plus the legacy
//! logging split used by the `FAST+Logging` baseline, root growth and the
//! lazy parent-update repair.
//!
//! A FAIR split never logs and never copies-on-write. Its persist points
//! are ordered so every crash state is readable:
//!
//! 1. build the sibling off-line and flush it (invisible until linked);
//! 2. link it: `node.sibling_ptr = sibling` — one persisted 8-byte store.
//!    Node and sibling now form a "virtual single node" whose upper half
//!    appears twice; readers tolerate the duplication (Fig. 2 state (2));
//! 3. truncate: `node.records[median].ptr = NULL` — one persisted 8-byte
//!    store moves the upper half to the sibling atomically;
//! 4. insert the separator into the parent with FAST, re-traversing from
//!    the root. A crash before step 4 leaves a *dangling sibling* that any
//!    later writer repairs (§4.2).

use pmem::{PmOffset, NULL_OFFSET};
use pmindex::{IndexError, Key, Value};

use crate::insert::{fast_insert_locked, insert_entry};
use crate::layout::NodeRef;
use crate::lock::{lock_write, unlock_write, WriteGuard};
use crate::tree::{FastFairTree, META_LOCK, META_LOG_AREA, META_LOG_HEAD, META_ROOT};

/// Builds and links the right sibling of a full, locked, repaired `node`;
/// returns `(sibling offset, separator key)`.
///
/// Shared by the FAIR and logging strategies — they differ only in how the
/// steps are made failure-atomic (`ordered_persists` toggles the per-step
/// flushes).
fn build_and_link_sibling(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    ordered_persists: bool,
) -> Result<(PmOffset, Key), IndexError> {
    let pool = &tree.pool;
    let cnt = node.count_records();
    debug_assert_eq!(cnt, tree.cap);
    let median = cnt / 2;
    let level = node.level();
    let split_key = node.key(median);

    let sib_off = pool.alloc(u64::from(tree.node_size), 64)?;
    let mut sib = tree.node(sib_off);
    sib.init(level);
    if level == 0 {
        let mut j = 0u16;
        for i in median..cnt {
            sib.set_key(j, node.key(i));
            sib.set_ptr(j, node.ptr(i));
            // The sibling is born sealed (init) and invisible until linked,
            // so its fingerprints are just written in place.
            sib.set_fp(j, crate::layout::fp_hash(node.key(i)));
            j += 1;
        }
        sib.set_count_hint(j);
    } else {
        // The median key is pushed up; its child becomes the sibling's
        // leftmost child.
        sib.set_leftmost(node.ptr(median));
        let mut j = 0u16;
        for i in median + 1..cnt {
            sib.set_key(j, node.key(i));
            sib.set_ptr(j, node.ptr(i));
            j += 1;
        }
        sib.set_count_hint(j);
    }
    sib.set_sibling(node.sibling());
    if ordered_persists {
        // Sibling must be durable before it becomes reachable.
        pool.persist(sib_off, u64::from(tree.node_size));
    }

    // Step 2: visibility point.
    node.set_sibling(sib_off);
    if ordered_persists {
        pool.persist(node.sibling_field_off(), 8);
    }

    // The truncation is about to strand the moved-out upper half above the
    // left node's new terminator; break its fingerprint seal first so no
    // reader (or crash image) trusts fingerprints that still cover them.
    // Probes that race the window below fail their seal recheck and fall
    // back to the linear scan, whose move-right handling covers the
    // "virtual single node" state either way.
    let was_sealed = node.fp_unseal();

    // Step 3: truncation — one atomic store moves the upper half out.
    node.set_ptr(median, NULL_OFFSET);
    if ordered_persists {
        pool.persist(node.ptr_off(median), 8);
    }
    node.set_count_hint(median);
    // Restore the above-terminator-zero fingerprint invariant, then
    // reseal (misses for moved-out keys now route through the sibling).
    for i in median..cnt {
        node.set_fp(i, 0);
    }
    node.fp_reseal_after(was_sealed);
    Ok((sib_off, split_key))
}

/// Inserts the pending record into the correct half and releases the node.
fn insert_pending_and_unlock(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    guard: WriteGuard<'_>,
    sib_off: PmOffset,
    split_key: Key,
    key: Key,
    value: Value,
) {
    if key < split_key {
        fast_insert_locked(tree, node, key, value, node.count_records());
    } else {
        // The sibling is invisible to other writers until this node's lock
        // is released (they all pass through `node`), so no sibling lock is
        // needed — mirroring the original implementation.
        let sib = tree.node(sib_off);
        fast_insert_locked(tree, sib, key, value, sib.count_records());
    }
    guard.unlock();
}

/// FAIR split (Algorithm 2): splits the locked full `node` and inserts
/// `(key, value)`, then updates the parent by re-traversing from the root.
pub(crate) fn fair_split_insert(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    guard: WriteGuard<'_>,
    key: Key,
    value: Value,
) -> Result<(), IndexError> {
    let level = node.level();
    let node_off = node.offset();
    let (sib_off, split_key) = build_and_link_sibling(tree, node, true)?;
    insert_pending_and_unlock(tree, node, guard, sib_off, split_key, key, value);
    parent_update(tree, level + 1, split_key, sib_off, node_off)
}

/// Legacy logging split — the `FAST+Logging` baseline of Fig. 5(a)/(c).
///
/// Before modifying the node it writes an undo image (node-size bytes plus
/// a target tag) to the tree's log area and persists a log-valid marker;
/// the split itself then needs no careful store ordering. The extra
/// `node_size/64 + 2` flushes are the 7–18 % overhead the paper measures.
pub(crate) fn logging_split_insert(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    guard: WriteGuard<'_>,
    key: Key,
    value: Value,
) -> Result<(), IndexError> {
    let pool = &tree.pool;
    let level = node.level();
    let node_off = node.offset();

    // One log buffer per tree, serialized by the superblock lock word.
    lock_write(pool, tree.meta + META_LOCK);
    let area = pool.load_u64(tree.meta + META_LOG_AREA);
    debug_assert_ne!(area, NULL_OFFSET);
    pool.store_u64(area, node_off);
    let words = u64::from(tree.node_size) / 8;
    for w in 0..words {
        pool.store_u64(area + 8 + w * 8, pool.load_u64(node_off + w * 8));
    }
    pool.persist(area, 8 + u64::from(tree.node_size));
    pool.store_u64(tree.meta + META_LOG_HEAD, node_off);
    pool.persist(tree.meta + META_LOG_HEAD, 8);

    // Guarded by the undo log, the split needs no ordered persists.
    // (On allocation failure the log head must be rolled back and the
    // superblock lock released before the error propagates.)
    let (sib_off, split_key) = match build_and_link_sibling(tree, node, false) {
        Ok(pair) => pair,
        Err(e) => {
            pool.store_u64(tree.meta + META_LOG_HEAD, 0);
            pool.persist(tree.meta + META_LOG_HEAD, 8);
            unlock_write(pool, tree.meta + META_LOCK);
            return Err(e);
        }
    };
    pool.persist(sib_off, u64::from(tree.node_size));
    pool.persist(node_off, u64::from(tree.node_size));

    pool.store_u64(tree.meta + META_LOG_HEAD, 0);
    pool.persist(tree.meta + META_LOG_HEAD, 8);
    unlock_write(pool, tree.meta + META_LOCK);

    insert_pending_and_unlock(tree, node, guard, sib_off, split_key, key, value);
    parent_update(tree, level + 1, split_key, sib_off, node_off)
}

/// Inserts the separator into the parent level, growing the tree if the
/// split node was the root.
fn parent_update(
    tree: &FastFairTree,
    parent_level: u32,
    split_key: Key,
    sib_off: PmOffset,
    _left_off: PmOffset,
) -> Result<(), IndexError> {
    insert_entry(tree, parent_level, split_key, sib_off)
}

/// Creates a new root at `new_level` with the current root as leftmost
/// child and `(key, right)` as its single record. Racing growers are
/// serialized by the superblock lock; the loser re-routes through the
/// normal insert path.
pub(crate) fn grow_root(
    tree: &FastFairTree,
    new_level: u32,
    key: Key,
    right: PmOffset,
) -> Result<(), IndexError> {
    let pool = &tree.pool;
    lock_write(pool, tree.meta + META_LOCK);
    let root_off = tree.root();
    let root = tree.node(root_off);
    if root.level() >= new_level {
        // Another thread grew the tree first; take the ordinary path.
        unlock_write(pool, tree.meta + META_LOCK);
        return insert_entry(tree, new_level, key, right);
    }
    debug_assert_eq!(root.level() + 1, new_level);
    let nr_off = match pool.alloc(u64::from(tree.node_size), 64) {
        Ok(off) => off,
        Err(e) => {
            // Don't leak the superblock lock on pool exhaustion.
            unlock_write(pool, tree.meta + META_LOCK);
            return Err(e.into());
        }
    };
    let mut nr = tree.node(nr_off);
    nr.init(new_level);
    nr.set_leftmost(root_off);
    nr.set_key(0, key);
    nr.set_ptr(0, right);
    nr.set_count_hint(1);
    pool.persist(nr_off, u64::from(tree.node_size));
    // Commit: one persisted 8-byte store of the root pointer.
    pool.store_u64(tree.meta + META_ROOT, nr_off);
    pool.persist(tree.meta + META_ROOT, 8);
    unlock_write(pool, tree.meta + META_LOCK);
    Ok(())
}

/// Lazy dangling-sibling repair (§4.2): called when a writer reached
/// `node_off` through a sibling pointer. Ensures the parent level has an
/// entry routing to this node; no-op when it already does (only one of the
/// racing writers succeeds, "the rest find that the parent has already
/// been updated").
pub(crate) fn ensure_parent_entry(
    tree: &FastFairTree,
    node_off: PmOffset,
    parent_level: u32,
) -> Result<(), IndexError> {
    let node = tree.node(node_off);
    // The separator is the smallest key in this node's subtree.
    let mut n = node;
    let sep = loop {
        match n.first_key() {
            None if n.is_leaf() => return Ok(()), // empty: nothing to route
            None => return Ok(()),                // empty internal: skip
            Some(k) if n.is_leaf() => break k,
            Some(_) => {
                n = tree.node(n.leftmost());
            }
        }
    };
    let root = tree.node(tree.root());
    if root.level() < parent_level {
        if tree.root() == node_off {
            return Ok(()); // the root itself has no parent
        }
        return grow_root(tree, parent_level, sep, node_off);
    }
    insert_entry(tree, parent_level, sep, node_off)
}

impl FastFairTree {
    /// Rolls back a half-finished logging split on open. FAIR trees keep
    /// the log head at zero, so this is a no-op for them.
    pub(crate) fn undo_log_rollback(&self) {
        let pool = &self.pool;
        let head = pool.load_u64(self.meta + META_LOG_HEAD);
        if head == NULL_OFFSET {
            return;
        }
        let area = pool.load_u64(self.meta + META_LOG_AREA);
        let target = pool.load_u64(area);
        debug_assert_eq!(target, head);
        let words = u64::from(self.node_size) / 8;
        for w in 0..words {
            pool.store_u64(target + w * 8, pool.load_u64(area + 8 + w * 8));
        }
        // The lock word inside the restored image is volatile state.
        pool.store_u64_volatile(target + crate::layout::LOCK_OFF, 0);
        pool.persist(target, u64::from(self.node_size));
        pool.store_u64(self.meta + META_LOG_HEAD, 0);
        pool.persist(self.meta + META_LOG_HEAD, 8);
    }
}
