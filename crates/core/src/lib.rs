//! # FAST+FAIR: a failure-atomic persistent B+-tree
//!
//! Reproduction of *"Endurable Transient Inconsistency in Byte-Addressable
//! Persistent B+-Trees"* (Hwang, Kim, Won, Nam — FAST'18; thesis version
//! Hwang 2019).
//!
//! The tree keeps its classic B+-tree layout — sorted records, high
//! fan-out, sibling-linked leaves — on byte-addressable persistent memory
//! without logging, copy-on-write or read latches:
//!
//! * **FAST** (Failure-Atomic ShifT) performs in-node insertion and
//!   deletion as a sequence of dependent 8-byte stores ordered by TSO (or
//!   explicit barriers), flushing cache lines in shift order. Every store
//!   leaves the node either consistent or *transiently inconsistent* in a
//!   way readers detect (duplicate adjacent pointers) and skip.
//! * **FAIR** (Failure-Atomic In-place Rebalance) splits nodes B-link
//!   style: build sibling → link sibling → truncate — each commit point a
//!   single persisted 8-byte store, with the parent updated afterwards and
//!   repaired lazily if a crash intervenes.
//! * **Lock-free search**: readers scan nodes in the direction of the last
//!   writer's shift (a per-node switch counter), so they never block and
//!   never miss an entry.
//!
//! See [`FastFairTree`] for the API, [`TreeOptions`] for the variants
//! benchmarked in the paper (`FAST+Logging`, `FAST+FAIR+LeafLock`, binary
//! in-node search), and the `pmem` crate for the persistence, latency and
//! crash-simulation substrate.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use pmem::{Pool, PoolConfig};
//! use fastfair::{FastFairTree, TreeOptions};
//! use pmindex::{Cursor, PmIndex};
//!
//! let pool = Arc::new(Pool::new(PoolConfig::default().size(8 << 20))?);
//! let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new())?;
//! // Bottom-up bulk load from a sorted stream: one flush per cache line.
//! let fresh = tree.bulk_load(&mut (1..=1000u64).map(|k| (k, k + 1_000_000)))?;
//! assert_eq!(fresh, 1000);
//! assert_eq!(tree.get(500), Some(1_000_500));
//! // Upserts report the value they replaced.
//! assert_eq!(tree.insert(500, 77)?, Some(1_000_500));
//! assert_eq!(tree.update(500, 78)?, Some(77));
//! // Streaming lock-free scan over the sibling-linked leaves.
//! let mut cur = tree.cursor();
//! cur.seek(100);
//! assert_eq!(cur.next(), Some((100, 1_000_100)));
//! assert!(tree.remove(500));
//! assert_eq!(tree.get(500), None);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod bulk;
mod delete;
mod insert;
pub mod layout;
pub mod lock;
mod merge;
mod recovery;
mod scan;
mod search;
mod split;
mod tree;

pub use layout::{capacity, NodeRef, INVALID_PTR, LEAF_ANCHOR};
pub use recovery::{ConsistencyError, ConsistencyReport, RecoveryReport};
pub use scan::TreeCursor;
pub use tree::{FastFairTree, InNodeSearch, SplitStrategy, TreeOptions};

#[cfg(test)]
mod tests;
