//! Bottom-up sorted bulk loading.
//!
//! [`FastFairTree::bulk_load_sorted`] builds a tree from an ascending key
//! stream at layout level: leaves are packed record-by-record with plain
//! stores and persisted **once** (one `clflush` per cache line — the
//! minimum the hardware allows), siblings are linked as they are built, and
//! each upper level is assembled from the fence keys (first key) of the
//! level below, exactly like an offline B+-tree build. Nothing is reachable
//! until the very end, so the only commit point is the single persisted
//! 8-byte store of the root pointer into the superblock — a crash at any
//! earlier instant leaves the old (empty) tree intact and merely leaks the
//! half-built nodes, the standard PM-allocator trade-off this repository
//! documents on [`pmem::Pool::free`].
//!
//! Robustness over raw speed at the edges: items that arrive out of order
//! or duplicate an already-packed key are set aside and inserted through
//! the ordinary FAST write path after the build, so the builder never
//! produces an unsorted node.

use pmem::{PmOffset, NULL_OFFSET};
use pmindex::{IndexError, Key, Value};

use crate::tree::{FastFairTree, META_ROOT};

/// One finished node of the level currently being built: its fence key
/// (smallest key of its subtree) and its offset.
type Fence = (Key, PmOffset);

/// Incremental builder for one sibling-linked level.
///
/// Nodes are persisted lazily — a node is flushed only once its sibling
/// pointer is known — so every node costs exactly one `persist` (one flush
/// per cache line plus one fence).
struct LevelBuilder<'a> {
    tree: &'a FastFairTree,
    level: u32,
    /// Node being filled (offset, fence key, records so far).
    open: Option<(PmOffset, Key, u16)>,
    /// Previous node of this level, awaiting its sibling link + persist.
    unflushed: Option<PmOffset>,
    fences: Vec<Fence>,
}

impl<'a> LevelBuilder<'a> {
    fn new(tree: &'a FastFairTree, level: u32) -> Self {
        LevelBuilder {
            tree,
            level,
            open: None,
            unflushed: None,
            fences: Vec::new(),
        }
    }

    /// Appends one record; internal levels receive the level below's fences
    /// (the first of each node batch becomes the `leftmost` child).
    fn push(&mut self, key: Key, ptr: u64) -> Result<(), IndexError> {
        let cap = self.tree.node_capacity();
        let (off, slot) = match self.open {
            Some((off, _, ref mut n)) if *n < cap => {
                let s = *n;
                *n += 1;
                (off, s)
            }
            _ => {
                self.finish_open();
                let off = self
                    .tree
                    .pool()
                    .alloc(u64::from(self.tree.node_size()), 64)?;
                let mut node = self.tree.node(off);
                node.init(self.level);
                if self.level > 0 {
                    // The batch's first child routes everything below the
                    // first separator key.
                    node.set_leftmost(ptr);
                    node.set_count_hint(0);
                    self.open = Some((off, key, 0));
                    return Ok(());
                }
                self.open = Some((off, key, 1));
                (off, 0)
            }
        };
        let node = self.tree.node(off);
        node.set_key(slot, key);
        node.set_ptr(slot, ptr);
        if self.level == 0 {
            // Fresh leaves are born sealed (init) and stay invisible until
            // the root swap, so fingerprints are packed right along with
            // the records and persisted by the node's single flush.
            node.set_fp(slot, crate::layout::fp_hash(key));
        }
        node.set_count_hint(slot + 1);
        Ok(())
    }

    /// Closes the node being filled and queues it for linking + persist.
    fn finish_open(&mut self) {
        if let Some((off, fence, _)) = self.open.take() {
            if let Some(prev) = self.unflushed.take() {
                let p = self.tree.node(prev);
                p.set_sibling(off);
                self.persist_node(prev);
            }
            self.fences.push((fence, off));
            self.unflushed = Some(off);
        }
    }

    /// Flushes the whole finished chain and returns this level's fences.
    fn finish(mut self) -> Vec<Fence> {
        self.finish_open();
        if let Some(last) = self.unflushed.take() {
            self.persist_node(last);
        }
        self.fences
    }

    /// One flush per cache line, one fence: the node's only persist.
    fn persist_node(&self, off: PmOffset) {
        self.tree
            .pool()
            .persist(off, u64::from(self.tree.node_size()));
    }
}

impl FastFairTree {
    /// Bottom-up bulk load from an ascending `(key, value)` stream.
    ///
    /// Packs full leaves directly in the persistent layout (one flush per
    /// cache line), builds the internal levels from the leaf fences, and
    /// publishes the finished tree with a single persisted 8-byte root
    /// store — the only commit point, so a crash mid-load recovers to the
    /// previous (empty) tree. Returns the number of new keys.
    ///
    /// Falls back to the ordinary insert path when the tree already holds
    /// data; out-of-order or duplicate items are likewise routed through
    /// normal inserts after the build. Requires exclusive access — the
    /// handle takes `&self` for [`pmindex::PmIndex`] uniformity, but no
    /// concurrent reader or writer may observe the root swap.
    ///
    /// # Errors
    ///
    /// [`IndexError::ReservedValue`] for values 0 / `u64::MAX` (the tree is
    /// left unchanged when the offending item precedes the publish point);
    /// [`IndexError::PoolExhausted`] when the pool cannot hold the nodes.
    pub fn bulk_load_sorted(
        &self,
        items: &mut dyn Iterator<Item = (Key, Value)>,
    ) -> Result<usize, IndexError> {
        if self.height() != 0 || !leaf_chain_is_empty(self) {
            // Non-empty tree: bulk-loading bottom-up would have to merge
            // with existing leaves; route through the normal write path.
            let mut fresh = 0;
            for (k, v) in items {
                pmindex::check_value(v)?;
                if crate::insert::tree_insert(self, k, v)?.is_none() {
                    fresh += 1;
                }
            }
            return Ok(fresh);
        }

        let mut leaves = LevelBuilder::new(self, 0);
        let mut stragglers: Vec<(Key, Value)> = Vec::new();
        let mut last: Option<Key> = None;
        let mut packed = 0usize;
        for (k, v) in items {
            pmindex::check_value(v)?;
            if last.is_some_and(|l| k <= l) {
                stragglers.push((k, v));
                continue;
            }
            last = Some(k);
            leaves.push(k, v)?;
            packed += 1;
        }
        let mut fences = leaves.finish();

        if !fences.is_empty() {
            // Build internal levels until one node spans everything.
            let mut level = 1u32;
            while fences.len() > 1 {
                let mut upper = LevelBuilder::new(self, level);
                for (k, child) in fences {
                    upper.push(k, child)?;
                }
                fences = upper.finish();
                level += 1;
            }
            // Commit: one persisted 8-byte store of the root pointer. The
            // old root leaf becomes garbage; a concurrent lock-free reader
            // could still be standing on it, so it is retired through the
            // epoch domain rather than freed on the spot.
            let old_root = self.root_offset_for_bulk();
            let new_root = fences[0].1;
            self.pool.store_u64(self.meta + META_ROOT, new_root);
            self.pool.persist(self.meta + META_ROOT, 8);
            self.retire_node(old_root);
        }

        let mut fresh = packed;
        for (k, v) in stragglers {
            if crate::insert::tree_insert(self, k, v)?.is_none() {
                fresh += 1;
            }
        }
        Ok(fresh)
    }

    fn root_offset_for_bulk(&self) -> PmOffset {
        let root = self.pool.load_u64(self.meta + META_ROOT);
        debug_assert_ne!(root, NULL_OFFSET);
        root
    }
}

/// True when no leaf on the chain holds a live key (cheaper than boxing a
/// cursor through the trait method).
fn leaf_chain_is_empty(tree: &FastFairTree) -> bool {
    let mut off = tree.leftmost_leaf();
    while off != NULL_OFFSET {
        let leaf = tree.node(off);
        if leaf.first_key().is_some() {
            return false;
        }
        off = leaf.sibling();
    }
    true
}
