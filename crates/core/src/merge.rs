//! FAIR-style node merging: reclaiming empty leaves.
//!
//! §4.2 of the paper sketches the merge half of lazy recovery: "we check
//! if the sibling node can be merged with its left node". Like every FAIR
//! step, unlinking an empty leaf is a sequence of independently tolerable
//! 8-byte commits:
//!
//! 1. delete the parent's routing entry (a FAST delete in the parent —
//!    itself a single-pointer commit). Keys that routed to the empty node
//!    now route to its left neighbour and, if needed, pass *through* the
//!    empty node via the sibling chain, so every intermediate state is
//!    readable;
//! 2. bypass the node in the leaf chain: `left.sibling = node.sibling` —
//!    one persisted 8-byte store;
//! 3. mark the node logically deleted so writers blocked on its latch
//!    retraverse.
//!
//! A crash between any two steps leaves an empty pass-through node that
//! readers skip naturally and that never receives new keys (its parent
//! entry is gone, and `covering_sibling` never redirects into an empty
//! node). The unlinked node is *retired* rather than freed on the spot:
//! lock-free readers may still be traversing it, so its block goes onto
//! the tree's epoch-domain limbo list (`crates/epoch`) and returns to
//! [`pmem::Pool::free`] once two epochs have passed — **online**, while
//! traffic is live, counted in `pmem::stats` (`nodes_limbo`,
//! `nodes_recycled_online`). [`FastFairTree::recover`] and `Drop` (both
//! quiescent) flush whatever is still in limbo. Limbo does not survive a
//! crash — pre-crash retirees leak, matching PM allocators without
//! offline GC — and a node is either on a chain or in limbo, never both,
//! so the crash-recovery sweep can never double-free.

use pmem::{PmOffset, NULL_OFFSET};
use pmindex::Key;

use crate::lock::WriteGuard;
use crate::tree::FastFairTree;

impl FastFairTree {
    /// Attempts to unlink the empty leaf at `node_off`; `probe_key` is any
    /// key that routed to it (the key the caller just deleted). Bails out
    /// silently whenever the precise preconditions no longer hold — the
    /// next delete (or `recover`) will try again.
    pub(crate) fn try_unlink_empty_leaf(&self, node_off: PmOffset, probe_key: Key) {
        if self.height() == 0 {
            return; // the root leaf is never unlinked
        }
        // Find the parent the same way a writer would.
        let Some(parent_off) = self.descend_to_parent(probe_key) else {
            return;
        };
        let parent_guard = WriteGuard::lock(&self.pool, self.node(parent_off).lock_word_off());
        let parent = self.node(parent_off);
        if parent.is_deleted() || parent.level() != 1 {
            return; // tree changed shape under us; give up quietly
        }
        crate::delete::repair_node_locked(self, parent);
        // Locate the routing entry for the node and its left neighbour.
        let cnt = parent.count_records();
        let mut slot = None;
        for i in 0..cnt {
            if parent.entry_valid(i) && parent.ptr(i) == node_off {
                slot = Some(i);
                break;
            }
        }
        let Some(s) = slot else {
            return; // not routed from this parent (moved right, or leftmost child)
        };
        let left_off = parent.left_ptr(s);
        if left_off == NULL_OFFSET || left_off == crate::layout::LEAF_ANCHOR {
            return;
        }
        if left_off == node_off {
            // The routing slot left of `s` is an exact duplicate entry for
            // the same child — tolerated FAST shift residue. Locking
            // `left_off` would take the victim's own latch and the second
            // acquisition below would self-deadlock; there is no distinct
            // left neighbour to splice through, so bail.
            return;
        }

        // Lock left-to-right, as all writers do.
        let left_guard = WriteGuard::lock(&self.pool, self.node(left_off).lock_word_off());
        let node_guard = WriteGuard::lock(&self.pool, self.node(node_off).lock_word_off());
        let left = self.node(left_off);
        let node = self.node(node_off);
        // Re-verify every precondition under the locks.
        if node.is_deleted()
            || left.is_deleted()
            || left.sibling() != node_off
            || node.first_key().is_some()
        {
            return;
        }

        // Step 1: remove the parent's routing entry (FAST delete in place —
        // we already hold the parent lock).
        let pcnt = parent.count_records();
        crate::delete::enter_delete_direction(self, parent, pcnt);
        parent.set_ptr(s, crate::layout::INVALID_PTR);
        self.pool.fence_if_not_tso();
        crate::delete::shift_left_from(self, parent, s, pcnt);
        parent.set_count_hint(pcnt - 1);

        // Step 2: bypass the node in the leaf chain — the visibility commit.
        left.set_sibling(node.sibling());
        self.pool.persist(left.sibling_field_off(), 8);

        // Step 3: writers blocked on the node's latch must retraverse.
        node.mark_deleted();

        node_guard.unlock();
        left_guard.unlock();
        parent_guard.unlock();

        // The node is unreachable for new traversals; queue its block for
        // recycling once the tree is quiescent.
        self.retire_node(node_off);
    }

    /// Lock-free descent to the level-1 node covering `key` (the parent
    /// level of the leaves). Returns `None` on a single-leaf tree.
    fn descend_to_parent(&self, key: Key) -> Option<PmOffset> {
        let mut node = self.node(self.root());
        if node.level() < 1 {
            return None;
        }
        let mut off = self.root();
        while node.level() > 1 {
            off = self.route(node, key);
            node = self.node(off);
        }
        // Move right at level 1 if the key now belongs to a sibling.
        while let Some(sib) = self.covering_sibling(node, key) {
            off = sib;
            node = self.node(off);
        }
        Some(off)
    }

    /// Collapses trivial roots (an internal root with no records routes
    /// everything through its leftmost child). Called from `recover`.
    pub(crate) fn shrink_root(&self) -> usize {
        let mut shrunk = 0;
        loop {
            let root = self.node(self.root());
            if root.is_leaf() || root.count_records() != 0 || root.sibling() != NULL_OFFSET {
                return shrunk;
            }
            let child = root.leftmost();
            self.pool
                .store_u64(self.meta + crate::tree::META_ROOT, child);
            self.pool.persist(self.meta + crate::tree::META_ROOT, 8);
            shrunk += 1;
        }
    }
}
