//! FAST insertion (Algorithm 1) and the shared write-path entry point.
//!
//! The FAST shift inserts a `(key, ptr)` record into the middle of a sorted
//! node by moving records one slot to the right in dependent 8-byte stores,
//! **poisoning each destination slot before rewriting it**:
//!
//! * storing [`INVALID_PTR`] into the destination slot makes it invalid to
//!   readers with one atomic write, while the original record stays valid
//!   in its old slot;
//! * the key is then written into the poisoned slot, and the final store
//!   of the pointer is the commit: one atomic 8-byte write that validates
//!   the complete record without ever exposing a torn one (the paper's
//!   pointer-duplication variant of this protocol is exact only for unique
//!   pointer values — see the deviation note in `layout`);
//! * cache lines are flushed in shift order whenever the shift crosses a
//!   line boundary, so the persist order matches the store order.
//!
//! Under TSO the `fence_if_not_tso` calls compile to nothing; on non-TSO
//! hardware they become `dmb` barriers (Fig. 5(d)).

use pmem::{stats, NULL_OFFSET};
use pmindex::{IndexError, Key, Value};

use crate::layout::{fp_hash, NodeRef, INVALID_PTR};
use crate::lock::WriteGuard;
use crate::tree::{FastFairTree, SplitStrategy};

/// Public write path: upserts `key → value` at the leaf level, returning
/// the replaced value for the [`pmindex::PmIndex::insert`] contract.
pub(crate) fn tree_insert(
    tree: &FastFairTree,
    key: Key,
    value: Value,
) -> Result<Option<Value>, IndexError> {
    write_entry(tree, 0, key, value, WriteMode::Upsert)
}

/// Public update path: replaces the value of an *existing* key with one
/// failure-atomic 8-byte store; leaves the tree untouched when the key is
/// absent.
pub(crate) fn tree_update(
    tree: &FastFairTree,
    key: Key,
    value: Value,
) -> Result<Option<Value>, IndexError> {
    write_entry(tree, 0, key, value, WriteMode::UpdateOnly)
}

/// Inserts an entry at an arbitrary tree level (FAIR parent updates).
pub(crate) fn insert_entry(
    tree: &FastFairTree,
    level: u32,
    key: Key,
    value: Value,
) -> Result<(), IndexError> {
    write_entry(tree, level, key, value, WriteMode::Upsert).map(|_| ())
}

/// How [`write_entry`] treats a missing key.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WriteMode {
    /// Insert when absent, overwrite in place when present.
    Upsert,
    /// Overwrite in place when present; no-op when absent.
    UpdateOnly,
}

/// The shared write path at an arbitrary tree level; returns the replaced
/// value when the key already existed.
///
/// Level 0 means the leaf level; higher levels are used by FAIR parent
/// updates, where an already-present key means another thread (or a
/// pre-crash writer) finished the update first — the idempotence §4.2
/// relies on.
fn write_entry(
    tree: &FastFairTree,
    level: u32,
    key: Key,
    value: Value,
    mode: WriteMode,
) -> Result<Option<Value>, IndexError> {
    'retry: loop {
        // Phase 1: lock-free descent to the target level.
        let off = match stats::timed(stats::Phase::Search, || descend_to_level(tree, level, key)) {
            Some(off) => off,
            None => {
                // The tree is shorter than `level`: the split node was the
                // root, so grow the tree (Algorithm 2's implicit case).
                // Unreachable at level 0 (a leaf always exists), so the
                // update-only mode never grows the tree.
                debug_assert!(level > 0);
                crate::split::grow_root(tree, level, key, value)?;
                return Ok(None);
            }
        };

        // Phase 2: lock, repair leftovers, move right as needed.
        let mut guard = WriteGuard::lock(&tree.pool, tree.node(off).lock_word_off());
        let mut node = tree.node(off);
        let mut redirected = None;
        loop {
            if node.is_deleted() {
                guard.unlock();
                continue 'retry;
            }
            // Lazy recovery (§4.2): only writers repair tolerable
            // inconsistency, and they do it before using the node.
            crate::delete::repair_node_locked(tree, node);
            match tree.covering_sibling(node, key) {
                Some(sib) => {
                    // Hand-over-hand to the right (B-link).
                    let next = WriteGuard::lock(&tree.pool, tree.node(sib).lock_word_off());
                    guard.unlock();
                    guard = next;
                    node = tree.node(sib);
                    redirected = Some(sib);
                }
                None => break,
            }
        }

        // Phase 3: the actual modification.
        let replaced = if let Some(slot) = find_valid_slot(node, key) {
            let old = node.ptr(slot);
            if level == 0 && old != value {
                // In-place value overwrite: a single failure-atomic 8-byte
                // pointer store — a crash exposes the old value or the new
                // one, never a torn mixture.
                stats::timed(stats::Phase::Update, || {
                    node.set_ptr(slot, value);
                    tree.pool.persist(node.ptr_off(slot), 8);
                });
            }
            // At internal levels an existing key means the parent update
            // already happened; nothing to do.
            guard.unlock();
            Some(old)
        } else if mode == WriteMode::UpdateOnly {
            // Update-only contract: absent key, leave the node untouched.
            guard.unlock();
            None
        } else {
            let cnt = node.count_records();
            if cnt < tree.cap {
                stats::timed(stats::Phase::Update, || {
                    fast_insert_locked(tree, node, key, value, cnt)
                });
                guard.unlock();
            } else {
                match tree.opts.split {
                    SplitStrategy::Fair => stats::timed(stats::Phase::Update, || {
                        crate::split::fair_split_insert(tree, node, guard, key, value)
                    })?,
                    SplitStrategy::Logging => stats::timed(stats::Phase::Update, || {
                        crate::split::logging_split_insert(tree, node, guard, key, value)
                    })?,
                }
            }
            None
        };

        // Reaching a node through its sibling pointer triggers the parent
        // update of a dangling sibling (§4.2); idempotent if already done.
        if let Some(sib) = redirected {
            crate::split::ensure_parent_entry(tree, sib, level + 1)?;
        }
        return Ok(replaced);
    }
}

/// Lock-free descent to the node at `level` covering `key`.
///
/// Returns `None` if the root is below the requested level.
fn descend_to_level(tree: &FastFairTree, level: u32, key: Key) -> Option<u64> {
    let mut off = tree.root();
    let mut node = tree.node(off);
    node.charge_hop();
    if node.level() < level {
        return None;
    }
    while node.level() > level {
        off = tree.route(node, key);
        node = tree.node(off);
        node.charge_hop();
    }
    Some(off)
}

/// Finds the slot of a *valid* entry with exactly `key`, scanning under the
/// node lock. A sealed fingerprint array short-circuits the scan: only
/// slots whose fingerprint matches have their record line inspected.
pub(crate) fn find_valid_slot(node: NodeRef<'_>, key: Key) -> Option<u16> {
    if node.fp_sealed() && node.is_leaf() {
        let h = fp_hash(key);
        for i in 0..node.slots() {
            if node.fp(i) != h {
                continue;
            }
            node.pool().charge_serial_reads(1);
            let p = node.ptr(i);
            if p != NULL_OFFSET && p != INVALID_PTR && node.key(i) == key {
                return Some(i);
            }
        }
        return None;
    }
    let mut i = 0u16;
    while i <= node.capacity() {
        let p = node.ptr(i);
        if p == NULL_OFFSET {
            return None;
        }
        if p != INVALID_PTR && node.key(i) == key {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// The FAST shift insert (Algorithm 1), on a node that is locked, repaired
/// and known to have room (`cnt < capacity`).
///
/// `cnt` is the exact record count; the terminator sits at slot `cnt`.
pub(crate) fn fast_insert_locked(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    key: Key,
    value: Value,
    cnt: u16,
) {
    debug_assert!(cnt < tree.cap);
    let pool = node.pool();

    // Break the fingerprint seal durably before the first record store so
    // no crash image pairs a sealed array with half-shifted records;
    // resealed on every exit below (with a rebuild when the node came in
    // unsealed from a crash).
    let was_sealed = node.fp_unseal();

    if node.geom().circular && cnt > 0 {
        // The node is locked and repaired, so slots 0..cnt are exactly the
        // sorted valid records; find where the key goes and take the short
        // side.
        let mut pos = 0u16;
        while pos < cnt && node.key(pos) < key {
            pos += 1;
        }
        if pos <= cnt / 2 {
            circ_insert_low(tree, node, key, value, cnt, pos);
            node.fp_reseal_after(was_sealed);
            return;
        }
    }

    // Make the switch counter even so lock-free readers scan left-to-right,
    // the direction of this right shift — and bump it on *every* shift, not
    // only on direction changes: readers re-check the counter after their
    // scan, and a second same-direction shift would otherwise be invisible
    // to that check, letting a scan chase the shift and miss records.
    let sc = node.switch_counter();
    node.set_switch_counter(if sc % 2 == 1 { sc + 1 } else { sc + 2 });

    // Pre-extend the NULL terminator (Algorithm 1 writes records[cnt+1]
    // before the shift): slot cnt+1 may hold a stale record from an earlier
    // delete or FAIR truncation, and the shift is about to overwrite the
    // terminator at slot cnt. If slot cnt+1 lands on a different cache line
    // than slot cnt (which in circular geometry includes the physical
    // wrap), it can persist independently, so it must be flushed before the
    // shift; otherwise TSO's per-line store order covers it.
    node.set_ptr(cnt + 1, NULL_OFFSET);
    pool.fence_if_not_tso();
    if node.rec_line(cnt + 1) != node.rec_line(cnt) {
        pool.persist(node.key_off(cnt + 1), 8);
    }

    let mut inserted = false;
    let mut moved = 0u64;
    let mut i = i32::from(cnt) - 1;
    while i >= 0 {
        let iu = i as u16;
        if node.key(iu) > key {
            // Shift record i → i+1: poison the destination slot, then write
            // the key, then commit the pointer. The poison keeps exactly
            // one of the two copies valid at every instant (Fig. 1), and
            // the original at slot i stays readable throughout.
            node.set_ptr(iu + 1, INVALID_PTR);
            pool.fence_if_not_tso();
            node.set_key(iu + 1, node.key(iu));
            pool.fence_if_not_tso();
            node.set_ptr(iu + 1, node.ptr(iu));
            node.set_fp(iu + 1, node.fp(iu));
            pool.fence_if_not_tso();
            moved += 1;
            if node.rec_line(iu + 1) != node.rec_line(iu) {
                // The line above this record is complete: flush it before
                // dirtying the next line down (§3.1).
                pool.persist(node.key_off(iu + 1), 8);
            }
        } else {
            // Insert at slot i+1, whose old occupant now lives in its
            // shifted copy at i+2: poison, write the new key, and commit
            // with the final store of `value`.
            node.set_ptr(iu + 1, INVALID_PTR);
            pool.fence_if_not_tso();
            node.set_key(iu + 1, key);
            pool.fence_if_not_tso();
            node.set_ptr(iu + 1, value);
            node.set_fp(iu + 1, fp_hash(key));
            pool.persist(node.key_off(iu + 1), 16);
            inserted = true;
            break;
        }
        i -= 1;
    }

    if !inserted {
        // Smallest key in the node: slot 0. The poison store invalidates
        // slot 0 while its shifted copy at slot 1 stays valid; the final
        // pointer store commits. (For leaves this is the same store as the
        // historical anchor trick — LEAF_ANCHOR shares the sentinel's bit
        // pattern.)
        node.set_ptr(0, INVALID_PTR);
        pool.fence_if_not_tso();
        node.set_key(0, key);
        pool.fence_if_not_tso();
        node.set_ptr(0, value);
        node.set_fp(0, fp_hash(key));
        pool.persist(node.key_off(0), 16);
    }

    node.set_count_hint(cnt + 1);
    stats::count_shift(moved);
    node.fp_reseal_after(was_sealed);
}

/// Circular-frame insert on the *short* left side: instead of shifting the
/// `cnt - pos` records above `pos` one slot right, move the head back one
/// and copy only the `pos` records below the insertion point one logical
/// slot left. Store/persist protocol:
///
/// 1. [`crate::delete::enter_delete_direction`] — the old slack slot above
///    the terminator is NULLed durably and the switch counter goes odd
///    *before* the head moves, so surviving readers scan right-to-left
///    (records move left here) and any reader that observes post-flip
///    stores fails its head recheck (TSO orders the counter bump first).
/// 2. The wrap slot (old logical `cap+1`, physical `head-1`) is poisoned
///    durably — it becomes the new logical 0, and a NULL there would read
///    as the terminator of an empty node.
/// 3. `head' = head-1` is stored and persisted. From here every crash
///    image is in the new frame with slot 0 poisoned: all `cnt` records
///    are present one logical slot up, plus tolerable poison/duplicate
///    residue from however far the copies below got.
/// 4. Records `0..pos` are copied one slot left, ascending, with the usual
///    poison/key/commit discipline and line-crossing flushes.
/// 5. The new record commits at logical `pos` with a final pointer store.
fn circ_insert_low(
    tree: &FastFairTree,
    node: NodeRef<'_>,
    key: Key,
    value: Value,
    cnt: u16,
    pos: u16,
) {
    let pool = node.pool();
    let mut node = node;
    let cap = node.capacity();

    crate::delete::enter_delete_direction(tree, node, cnt);

    node.set_ptr(cap + 1, INVALID_PTR);
    pool.fence_if_not_tso();
    pool.persist(node.ptr_off(cap + 1), 8);

    let slots = node.slots();
    let head = node.head_snapshot();
    node.set_head((head + slots - 1) % slots);
    pool.persist(node.head_field_off(), 8);

    // From here `node` views the new frame: new logical j+1 = old logical j.
    for j in 0..pos {
        if j > 0 {
            node.set_ptr(j, INVALID_PTR);
            pool.fence_if_not_tso();
        }
        node.set_key(j, node.key(j + 1));
        pool.fence_if_not_tso();
        node.set_ptr(j, node.ptr(j + 1));
        node.set_fp(j, node.fp(j + 1));
        pool.fence_if_not_tso();
        if node.rec_line(j) != node.rec_line(j + 1) {
            // This copy completed the line holding slot j; flush it before
            // dirtying the next line.
            pool.persist(node.key_off(j), 8);
        }
    }

    if pos > 0 {
        node.set_ptr(pos, INVALID_PTR);
        pool.fence_if_not_tso();
    }
    node.set_key(pos, key);
    pool.fence_if_not_tso();
    node.set_ptr(pos, value);
    node.set_fp(pos, fp_hash(key));
    pool.persist(node.key_off(pos), 16);

    node.set_count_hint(cnt + 1);
    stats::count_shift(u64::from(pos));
}
