//! Persistent node layout and the entry-validity rules of FAST.
//!
//! A node is a `node_size`-byte, cache-line-aligned region in the pool:
//!
//! ```text
//! offset  field
//! ------  -----------------------------------------------------------
//!   0     leftmost_child  (internal: child for keys < key(0);
//!                          leaf: the constant LEAF_ANCHOR)
//!   8     sibling_ptr     (B-link right sibling, 0 = none)
//!  16     switch_counter  (even: last writer inserted → readers scan L→R;
//!                          odd:  last writer deleted  → readers scan R→L)
//!  24     level_flags     (low 32 bits: level, 0 = leaf; bit 32: deleted)
//!  32     count_hint      (writer-maintained entry count; advisory only —
//!                          correctness always re-derives from the
//!                          NULL-pointer terminator)
//!  40     lock_word       (volatile embedded RW spin lock; reset on open)
//!  48..64 reserved
//!  64     records[0].key
//!  72     records[0].ptr
//!  80     records[1].key ...
//! ```
//!
//! Entry `i` is **valid** iff `ptr(i) != NULL && ptr(i) != INVALID_PTR`.
//! A NULL pointer terminates the array; [`INVALID_PTR`] (`u64::MAX`, one of
//! the two reserved values of the `pmindex` contract) marks the poisoned
//! slot a shift is currently rewriting or a crashed shift left behind.
//! A single 8-byte pointer store atomically invalidates (poison) or
//! validates (final pointer store) an entry, so readers never observe a
//! torn record.
//!
//! ## Deviation from the original C++ implementation (documented)
//!
//! The original detects in-flight and crashed shifts by *pointer
//! duplication*: entry `i` is garbage iff `ptr(i) == ptr(i-1)` (or the
//! leftmost child for `i == 0`). That rule is exact only because the
//! original stores unique record *pointers* as values. This reproduction
//! stores arbitrary `u64` values, where two adjacent keys may legitimately
//! carry the same value — under the duplication rule such entries read as
//! garbage and silently disappear (and a left-shift's transient states can
//! expose torn `(key, ptr)` pairs to equal-value neighbours). We therefore
//! poison a slot explicitly with the reserved [`INVALID_PTR`] sentinel
//! before rewriting it, at the cost of one extra 8-byte store per shifted
//! record. The crash story is unchanged: every intermediate state is a
//! complete record, a poisoned slot, or an exact duplicate of its left
//! neighbour (same key *and* value, left by a finished copy whose source
//! was not yet poisoned) — readers skip the first two and dedup the third,
//! and lazy recovery compacts all of them. The leaf anchor [`LEAF_ANCHOR`]
//! shares the sentinel's bit pattern, so invalidating entry 0 of a leaf is
//! the same store it always was. This is why values may not be 0 or
//! `u64::MAX`.

use pmem::{PmOffset, Pool, CACHE_LINE, NULL_OFFSET};

/// Size of the per-node header in bytes (one cache line).
pub const HEADER_SIZE: u64 = 64;

/// Size of one `(key, ptr)` record in bytes.
pub const RECORD_SIZE: u64 = 16;

/// Reserved non-NULL pointer that anchors the left edge of a leaf node.
pub const LEAF_ANCHOR: u64 = u64::MAX;

/// Reserved pointer that poisons a slot for the duration of a FAST shift
/// rewrite (and marks the garbage a crashed shift leaves behind). Shares
/// the bit pattern of [`LEAF_ANCHOR`] — both are the reserved `u64::MAX`
/// of the `pmindex` value contract, and both mean "skip this entry".
pub const INVALID_PTR: u64 = u64::MAX;

const LEFTMOST_OFF: u64 = 0;
const SIBLING_OFF: u64 = 8;
const SWITCH_OFF: u64 = 16;
const LEVEL_OFF: u64 = 24;
const COUNT_OFF: u64 = 32;
/// Offset of the volatile lock word within a node header.
pub const LOCK_OFF: u64 = 40;

const DELETED_BIT: u64 = 1 << 32;

/// Number of record slots in a node of `node_size` bytes.
///
/// The last two slots are never counted as capacity: one is the permanent
/// NULL terminator and one is slack for the terminator pre-extension done by
/// the FAST shift (Algorithm 1 writes `records[cnt+1]` before shifting).
pub fn capacity(node_size: u32) -> u16 {
    let slots = (u64::from(node_size) - HEADER_SIZE) / RECORD_SIZE;
    assert!(slots >= 4, "node size {node_size} too small");
    (slots - 2) as u16
}

/// A borrowed view of one persistent node.
///
/// All accessors go through the pool's atomic load/store primitives; the
/// view itself holds no mutable state, so it is freely copyable and safe to
/// use from concurrent readers.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    pool: &'a Pool,
    off: PmOffset,
    node_size: u32,
}

impl std::fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRef")
            .field("off", &self.off)
            .field("level", &self.level())
            .field("count_hint", &self.count_hint())
            .field("sibling", &self.sibling())
            .finish()
    }
}

impl<'a> NodeRef<'a> {
    /// Creates a view of the node at `off`.
    pub fn new(pool: &'a Pool, off: PmOffset, node_size: u32) -> Self {
        debug_assert!(off != NULL_OFFSET && off.is_multiple_of(CACHE_LINE as u64));
        NodeRef {
            pool,
            off,
            node_size,
        }
    }

    /// The pool this node lives in.
    pub fn pool(&self) -> &'a Pool {
        self.pool
    }

    /// Pool offset of the node.
    pub fn offset(&self) -> PmOffset {
        self.off
    }

    /// Node size in bytes.
    pub fn node_size(&self) -> u32 {
        self.node_size
    }

    /// Usable record capacity.
    pub fn capacity(&self) -> u16 {
        capacity(self.node_size)
    }

    // ---- header ----------------------------------------------------------

    /// Leftmost child pointer (internal) / leaf anchor (leaf).
    pub fn leftmost(&self) -> PmOffset {
        self.pool.load_u64(self.off + LEFTMOST_OFF)
    }

    /// Stores the leftmost child pointer.
    pub fn set_leftmost(&self, v: PmOffset) {
        self.pool.store_u64(self.off + LEFTMOST_OFF, v);
    }

    /// Right sibling pointer (0 = none).
    pub fn sibling(&self) -> PmOffset {
        self.pool.load_u64(self.off + SIBLING_OFF)
    }

    /// Stores the sibling pointer (does not flush).
    pub fn set_sibling(&self, v: PmOffset) {
        self.pool.store_u64(self.off + SIBLING_OFF, v);
    }

    /// Pool offset of the sibling pointer field (for targeted flushes).
    pub fn sibling_field_off(&self) -> PmOffset {
        self.off + SIBLING_OFF
    }

    /// Current switch counter (even = insert direction, odd = delete).
    pub fn switch_counter(&self) -> u64 {
        self.pool.load_u64(self.off + SWITCH_OFF)
    }

    /// Stores the switch counter.
    pub fn set_switch_counter(&self, v: u64) {
        self.pool.store_u64(self.off + SWITCH_OFF, v);
    }

    /// Tree level: 0 for leaves.
    pub fn level(&self) -> u32 {
        (self.pool.load_u64(self.off + LEVEL_OFF) & 0xffff_ffff) as u32
    }

    /// True if this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.level() == 0
    }

    /// True if the node has been logically deleted (unlinked).
    pub fn is_deleted(&self) -> bool {
        self.pool.load_u64(self.off + LEVEL_OFF) & DELETED_BIT != 0
    }

    /// Sets the level field, clearing flags.
    pub fn set_level(&self, level: u32) {
        self.pool.store_u64(self.off + LEVEL_OFF, u64::from(level));
    }

    /// Marks the node logically deleted.
    pub fn mark_deleted(&self) {
        let v = self.pool.load_u64(self.off + LEVEL_OFF);
        self.pool.store_u64(self.off + LEVEL_OFF, v | DELETED_BIT);
    }

    /// Writer-maintained count hint. Advisory: may be stale after a crash.
    pub fn count_hint(&self) -> u16 {
        let c = self.pool.load_u64(self.off + COUNT_OFF);
        (c.min(u64::from(self.capacity()))) as u16
    }

    /// Stores the count hint.
    pub fn set_count_hint(&self, v: u16) {
        self.pool.store_u64(self.off + COUNT_OFF, u64::from(v));
    }

    /// Pool offset of the embedded lock word.
    pub fn lock_word_off(&self) -> PmOffset {
        self.off + LOCK_OFF
    }

    // ---- records ---------------------------------------------------------

    /// Pool offset of record `i`'s key field.
    #[inline]
    pub fn key_off(&self, i: u16) -> PmOffset {
        self.off + HEADER_SIZE + u64::from(i) * RECORD_SIZE
    }

    /// Pool offset of record `i`'s pointer field.
    #[inline]
    pub fn ptr_off(&self, i: u16) -> PmOffset {
        self.key_off(i) + 8
    }

    /// Loads record `i`'s key.
    #[inline]
    pub fn key(&self, i: u16) -> u64 {
        self.pool.load_u64(self.key_off(i))
    }

    /// Loads record `i`'s pointer.
    #[inline]
    pub fn ptr(&self, i: u16) -> u64 {
        self.pool.load_u64(self.ptr_off(i))
    }

    /// Stores record `i`'s key.
    #[inline]
    pub fn set_key(&self, i: u16, k: u64) {
        self.pool.store_u64(self.key_off(i), k);
    }

    /// Stores record `i`'s pointer.
    #[inline]
    pub fn set_ptr(&self, i: u16, p: u64) {
        self.pool.store_u64(self.ptr_off(i), p);
    }

    /// The pointer to the *left* of entry `i`: `ptr(i-1)`, or the leftmost
    /// child for `i == 0`. Used for routing (e.g. finding the left sibling
    /// of a merged-away child), not for validity.
    #[inline]
    pub fn left_ptr(&self, i: u16) -> u64 {
        if i == 0 {
            self.leftmost()
        } else {
            self.ptr(i - 1)
        }
    }

    /// FAST entry validity: a pointer that is neither the NULL terminator
    /// nor the [`INVALID_PTR`] poison sentinel.
    #[inline]
    pub fn entry_valid(&self, i: u16) -> bool {
        let p = self.ptr(i);
        p != NULL_OFFSET && p != INVALID_PTR
    }

    /// Exact number of records before the NULL terminator (counts invalid
    /// entries too, since they occupy slots). O(n) scan; used by writers
    /// that hold the node lock.
    pub fn count_records(&self) -> u16 {
        let cap = self.capacity();
        // Start from the hint and self-heal in either direction.
        let mut c = self.count_hint();
        if c > cap {
            c = cap;
        }
        // The terminator may be earlier than the hint…
        while c > 0 && self.ptr(c - 1) == NULL_OFFSET {
            c -= 1;
        }
        // …or later.
        while c < cap + 1 && self.ptr(c) != NULL_OFFSET {
            c += 1;
        }
        c
    }

    /// Collects the valid `(key, ptr)` entries in slot order, dropping the
    /// exact duplicate of its left neighbour that a finished copy step of
    /// an interrupted shift leaves behind (same key, same value — keys are
    /// unique within a node, so an adjacent repeat is always shift residue).
    pub fn valid_entries(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut i = 0u16;
        while i <= self.capacity() {
            let p = self.ptr(i);
            if p == NULL_OFFSET {
                break;
            }
            if p != INVALID_PTR {
                let k = self.key(i);
                if out.last().map(|&(lk, _)| lk) != Some(k) {
                    out.push((k, p));
                }
            }
            i += 1;
        }
        out
    }

    /// Key of the first *valid* entry, if any.
    pub fn first_key(&self) -> Option<u64> {
        let mut i = 0u16;
        while i <= self.capacity() {
            let p = self.ptr(i);
            if p == NULL_OFFSET {
                return None;
            }
            if p != INVALID_PTR {
                return Some(self.key(i));
            }
            i += 1;
        }
        None
    }

    /// Initializes a freshly allocated node (zeroing all record slots).
    ///
    /// Writes are plain stores; the caller persists the node when the
    /// algorithm requires it (e.g. FAIR flushes the whole sibling before
    /// linking it).
    pub fn init(&self, level: u32) {
        self.pool.zero_region(self.off, u64::from(self.node_size));
        self.set_level(level);
        if level == 0 {
            self.set_leftmost(LEAF_ANCHOR);
        }
    }

    /// Charges the read-latency cost of landing on this node (one serial
    /// miss for the header line).
    #[inline]
    pub fn charge_hop(&self) {
        self.pool.charge_serial_reads(1);
    }

    /// Charges a linear scan that touched records `[0, n)` of this node as
    /// prefetch-friendly adjacent lines.
    #[inline]
    pub fn charge_linear_scan(&self, n: u16) {
        if n == 0 {
            return;
        }
        let lines = (u64::from(n) * RECORD_SIZE).div_ceil(CACHE_LINE as u64) as u32;
        self.pool.charge_parallel_lines(lines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    fn pool() -> Pool {
        Pool::new(PoolConfig::new().size(1 << 20)).unwrap()
    }

    fn fresh_node(pool: &Pool, size: u32, level: u32) -> NodeRef<'_> {
        let off = pool.alloc(u64::from(size), 64).unwrap();
        let n = NodeRef::new(pool, off, size);
        n.init(level);
        n
    }

    #[test]
    fn capacity_matches_paper_geometry() {
        // 512-byte node: (512-64)/16 = 28 slots, 26 usable.
        assert_eq!(capacity(512), 26);
        assert_eq!(capacity(256), 10);
        assert_eq!(capacity(1024), 58);
        assert_eq!(capacity(4096), 250);
    }

    #[test]
    fn header_roundtrip() {
        let p = pool();
        let n = fresh_node(&p, 512, 3);
        assert_eq!(n.level(), 3);
        assert!(!n.is_leaf());
        assert!(!n.is_deleted());
        n.set_sibling(4096);
        assert_eq!(n.sibling(), 4096);
        n.set_switch_counter(5);
        assert_eq!(n.switch_counter(), 5);
        n.set_count_hint(7);
        assert_eq!(n.count_hint(), 7);
        n.mark_deleted();
        assert!(n.is_deleted());
        assert_eq!(n.level(), 3);
    }

    #[test]
    fn leaf_gets_anchor() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        assert!(n.is_leaf());
        assert_eq!(n.leftmost(), LEAF_ANCHOR);
        assert_eq!(n.left_ptr(0), LEAF_ANCHOR);
    }

    #[test]
    fn validity_rules() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        // Empty: entry 0 has NULL ptr -> invalid.
        assert!(!n.entry_valid(0));
        n.set_key(0, 10);
        n.set_ptr(0, 100);
        assert!(n.entry_valid(0));
        // A duplicate *value* on a different key is perfectly valid: values
        // are arbitrary u64s, not unique pointers (see the module docs).
        n.set_key(1, 20);
        n.set_ptr(1, 100);
        assert!(n.entry_valid(1));
        n.set_ptr(1, 200);
        assert!(n.entry_valid(1));
        // The poison sentinel marks an entry invalid at any slot.
        n.set_ptr(1, INVALID_PTR);
        assert!(!n.entry_valid(1));
        n.set_ptr(1, 200);
        // Anchor in entry 0 marks it invalid (leaf pos-0 shift state): the
        // anchor shares the sentinel's bit pattern.
        n.set_ptr(0, LEAF_ANCHOR);
        assert!(!n.entry_valid(0));
        assert!(n.entry_valid(1));
    }

    #[test]
    fn count_records_self_heals_stale_hint() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        for i in 0..5u16 {
            n.set_key(i, u64::from(i) * 10 + 10);
            n.set_ptr(i, u64::from(i) + 100);
        }
        n.set_count_hint(0); // stale low
        assert_eq!(n.count_records(), 5);
        n.set_count_hint(20); // stale high
        assert_eq!(n.count_records(), 5);
    }

    #[test]
    fn valid_entries_skips_poison_and_shift_residue() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        n.set_key(0, 10);
        n.set_ptr(0, 100);
        n.set_key(1, 15);
        n.set_ptr(1, INVALID_PTR); // poisoned mid-shift slot -> garbage
        n.set_key(2, 20);
        n.set_ptr(2, 200);
        n.set_key(3, 20);
        n.set_ptr(3, 200); // exact adjacent duplicate -> shift residue
        n.set_key(4, 30);
        n.set_ptr(4, 200); // same value, different key -> valid
        assert_eq!(n.valid_entries(), vec![(10, 100), (20, 200), (30, 200)]);
        assert_eq!(n.first_key(), Some(10));
    }

    #[test]
    fn first_key_none_for_empty() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        assert_eq!(n.first_key(), None);
    }

    #[test]
    fn init_clears_stale_records() {
        let p = pool();
        let off = p.alloc(512, 64).unwrap();
        let n = NodeRef::new(&p, off, 512);
        n.set_key(3, 333);
        n.set_ptr(3, 334);
        n.init(0);
        assert_eq!(n.key(3), 0);
        assert_eq!(n.ptr(3), 0);
        assert_eq!(n.count_records(), 0);
    }
}
