//! Persistent node layout and the entry-validity rules of FAST.
//!
//! A node is a `node_size`-byte, cache-line-aligned region in the pool:
//!
//! ```text
//! offset  field
//! ------  -----------------------------------------------------------
//!   0     leftmost_child  (internal: child for keys < key(0);
//!                          leaf: the constant LEAF_ANCHOR)
//!   8     sibling_ptr     (B-link right sibling, 0 = none)
//!  16     switch_counter  (even: last writer inserted → readers scan L→R;
//!                          odd:  last writer deleted  → readers scan R→L)
//!  24     level_flags     (low 32 bits: level, 0 = leaf; bit 32: deleted)
//!  32     count_hint      (writer-maintained entry count; advisory only —
//!                          correctness always re-derives from the
//!                          NULL-pointer terminator)
//!  40     lock_word       (volatile embedded RW spin lock; reset on open)
//!  48     fp_seal         (fingerprint trees only: 1 = the fingerprint
//!                          array is consistent with the records and
//!                          durable; 0 = under repair, probe linearly)
//!  56     head            (circular trees only: physical slot of logical
//!                          record 0)
//!  64     fingerprints[]  (fingerprint trees only: one byte per record
//!                          slot, rounded up to whole cache lines)
//!  64+fp  records[0].key
//!  72+fp  records[0].ptr
//!  80+fp  records[1].key ...
//! ```
//!
//! The geometry knobs live in [`NodeGeom`]; the default layout (no
//! fingerprints, no circular frame) is byte-identical to earlier versions
//! of this crate.
//!
//! Entry `i` is **valid** iff `ptr(i) != NULL && ptr(i) != INVALID_PTR`.
//! A NULL pointer terminates the array; [`INVALID_PTR`] (`u64::MAX`, one of
//! the two reserved values of the `pmindex` contract) marks the poisoned
//! slot a shift is currently rewriting or a crashed shift left behind.
//! A single 8-byte pointer store atomically invalidates (poison) or
//! validates (final pointer store) an entry, so readers never observe a
//! torn record.
//!
//! ## Deviation from the original C++ implementation (documented)
//!
//! The original detects in-flight and crashed shifts by *pointer
//! duplication*: entry `i` is garbage iff `ptr(i) == ptr(i-1)` (or the
//! leftmost child for `i == 0`). That rule is exact only because the
//! original stores unique record *pointers* as values. This reproduction
//! stores arbitrary `u64` values, where two adjacent keys may legitimately
//! carry the same value — under the duplication rule such entries read as
//! garbage and silently disappear (and a left-shift's transient states can
//! expose torn `(key, ptr)` pairs to equal-value neighbours). We therefore
//! poison a slot explicitly with the reserved [`INVALID_PTR`] sentinel
//! before rewriting it, at the cost of one extra 8-byte store per shifted
//! record. The crash story is unchanged: every intermediate state is a
//! complete record, a poisoned slot, or an exact duplicate of its left
//! neighbour (same key *and* value, left by a finished copy whose source
//! was not yet poisoned) — readers skip the first two and dedup the third,
//! and lazy recovery compacts all of them. The leaf anchor [`LEAF_ANCHOR`]
//! shares the sentinel's bit pattern, so invalidating entry 0 of a leaf is
//! the same store it always was. This is why values may not be 0 or
//! `u64::MAX`.

use pmem::{PmOffset, Pool, CACHE_LINE, NULL_OFFSET};

/// Size of the per-node header in bytes (one cache line).
pub const HEADER_SIZE: u64 = 64;

/// Size of one `(key, ptr)` record in bytes.
pub const RECORD_SIZE: u64 = 16;

/// Reserved non-NULL pointer that anchors the left edge of a leaf node.
pub const LEAF_ANCHOR: u64 = u64::MAX;

/// Reserved pointer that poisons a slot for the duration of a FAST shift
/// rewrite (and marks the garbage a crashed shift leaves behind). Shares
/// the bit pattern of [`LEAF_ANCHOR`] — both are the reserved `u64::MAX`
/// of the `pmindex` value contract, and both mean "skip this entry".
pub const INVALID_PTR: u64 = u64::MAX;

const LEFTMOST_OFF: u64 = 0;
const SIBLING_OFF: u64 = 8;
const SWITCH_OFF: u64 = 16;
const LEVEL_OFF: u64 = 24;
const COUNT_OFF: u64 = 32;
/// Offset of the volatile lock word within a node header.
pub const LOCK_OFF: u64 = 40;
const SEAL_OFF: u64 = 48;
const HEAD_OFF: u64 = 56;

const DELETED_BIT: u64 = 1 << 32;

/// Per-tree node-layout knobs. The default (`NodeGeom::default()`) is the
/// classic FAST+FAIR layout; the two flags are the microarchitecture
/// ablation levers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeGeom {
    /// Reserve a 1-byte-per-slot fingerprint array between the header and
    /// the records, and probe it on leaf point lookups so key cache lines
    /// are touched only on fingerprint hits (FP-tree §3 technique grafted
    /// onto the FAST node). Costs a little capacity: the array is rounded
    /// up to whole cache lines.
    pub fingerprints: bool,
    /// Keep the records in a circular buffer framed by a persistent `head`
    /// offset, so a low-position insert/delete shifts the *short* side
    /// (Circ-Tree's N/2 → N/4 mean-shift-distance claim).
    pub circular: bool,
}

impl NodeGeom {
    /// Geometry with fingerprint probes enabled.
    pub fn fingerprinted() -> Self {
        NodeGeom {
            fingerprints: true,
            circular: false,
        }
    }

    /// Geometry with the circular record frame enabled.
    pub fn circular() -> Self {
        NodeGeom {
            fingerprints: false,
            circular: true,
        }
    }
}

/// Cache lines reserved for the fingerprint array of a `node_size` node.
///
/// Chosen as the smallest number of whole lines that can hold one byte per
/// record slot: `lines * 64 >= (node_size - 64 - lines * 64) / 16`, i.e.
/// `lines = ceil((node_size - 64) / 1088)`.
pub fn fp_lines(node_size: u32) -> u64 {
    (u64::from(node_size) - HEADER_SIZE).div_ceil(17 * CACHE_LINE as u64)
}

/// Byte offset of record slot 0 within a node, for the given geometry.
pub fn records_base(node_size: u32, geom: NodeGeom) -> u64 {
    HEADER_SIZE
        + if geom.fingerprints {
            fp_lines(node_size) * CACHE_LINE as u64
        } else {
            0
        }
}

/// Number of record slots in a node of `node_size` bytes (default layout).
///
/// The last two slots are never counted as capacity: one is the permanent
/// NULL terminator and one is slack for the terminator pre-extension done by
/// the FAST shift (Algorithm 1 writes `records[cnt+1]` before shifting).
pub fn capacity(node_size: u32) -> u16 {
    capacity_with(node_size, NodeGeom::default())
}

/// Number of record slots for the given geometry (see [`capacity`]).
pub fn capacity_with(node_size: u32, geom: NodeGeom) -> u16 {
    let slots = (u64::from(node_size) - records_base(node_size, geom)) / RECORD_SIZE;
    assert!(slots >= 4, "node size {node_size} too small");
    (slots - 2) as u16
}

/// One-byte fingerprint of a key. Never 0 — 0 marks an empty slot.
#[inline]
pub fn fp_hash(key: u64) -> u8 {
    let h = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as u8;
    if h == 0 {
        1
    } else {
        h
    }
}

/// A borrowed view of one persistent node.
///
/// All accessors go through the pool's atomic load/store primitives; the
/// view itself holds no mutable state, so it is freely copyable and safe to
/// use from concurrent readers.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    pool: &'a Pool,
    off: PmOffset,
    node_size: u32,
    geom: NodeGeom,
    /// Snapshot of the circular head taken when the view was created (or
    /// last [`reframe`](NodeRef::reframe)d). All logical→physical slot
    /// mapping goes through this snapshot so one scan sees one consistent
    /// frame; readers must verify [`head_unchanged`](NodeRef::head_unchanged)
    /// alongside the switch-counter recheck and retry on a frame flip.
    head: u16,
}

impl std::fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeRef")
            .field("off", &self.off)
            .field("level", &self.level())
            .field("count_hint", &self.count_hint())
            .field("sibling", &self.sibling())
            .finish()
    }
}

impl<'a> NodeRef<'a> {
    /// Creates a view of the node at `off` with the default geometry.
    pub fn new(pool: &'a Pool, off: PmOffset, node_size: u32) -> Self {
        Self::with_geom(pool, off, node_size, NodeGeom::default())
    }

    /// Creates a view of the node at `off` with an explicit geometry,
    /// snapshotting the circular head.
    pub fn with_geom(pool: &'a Pool, off: PmOffset, node_size: u32, geom: NodeGeom) -> Self {
        debug_assert!(off != NULL_OFFSET && off.is_multiple_of(CACHE_LINE as u64));
        let mut n = NodeRef {
            pool,
            off,
            node_size,
            geom,
            head: 0,
        };
        if geom.circular {
            n.reframe();
        }
        n
    }

    /// The geometry this view maps records with.
    pub fn geom(&self) -> NodeGeom {
        self.geom
    }

    /// The pool this node lives in.
    pub fn pool(&self) -> &'a Pool {
        self.pool
    }

    /// Pool offset of the node.
    pub fn offset(&self) -> PmOffset {
        self.off
    }

    /// Node size in bytes.
    pub fn node_size(&self) -> u32 {
        self.node_size
    }

    /// Usable record capacity.
    pub fn capacity(&self) -> u16 {
        capacity_with(self.node_size, self.geom)
    }

    /// Total physical record slots (capacity + terminator + shift slack).
    #[inline]
    pub fn slots(&self) -> u16 {
        self.capacity() + 2
    }

    // ---- header ----------------------------------------------------------

    /// Leftmost child pointer (internal) / leaf anchor (leaf).
    pub fn leftmost(&self) -> PmOffset {
        self.pool.load_u64(self.off + LEFTMOST_OFF)
    }

    /// Stores the leftmost child pointer.
    pub fn set_leftmost(&self, v: PmOffset) {
        self.pool.store_u64(self.off + LEFTMOST_OFF, v);
    }

    /// Right sibling pointer (0 = none).
    pub fn sibling(&self) -> PmOffset {
        self.pool.load_u64(self.off + SIBLING_OFF)
    }

    /// Stores the sibling pointer (does not flush).
    pub fn set_sibling(&self, v: PmOffset) {
        self.pool.store_u64(self.off + SIBLING_OFF, v);
    }

    /// Pool offset of the sibling pointer field (for targeted flushes).
    pub fn sibling_field_off(&self) -> PmOffset {
        self.off + SIBLING_OFF
    }

    /// Current switch counter (even = insert direction, odd = delete).
    pub fn switch_counter(&self) -> u64 {
        self.pool.load_u64(self.off + SWITCH_OFF)
    }

    /// Stores the switch counter.
    pub fn set_switch_counter(&self, v: u64) {
        self.pool.store_u64(self.off + SWITCH_OFF, v);
    }

    /// Tree level: 0 for leaves.
    pub fn level(&self) -> u32 {
        (self.pool.load_u64(self.off + LEVEL_OFF) & 0xffff_ffff) as u32
    }

    /// True if this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.level() == 0
    }

    /// True if the node has been logically deleted (unlinked).
    pub fn is_deleted(&self) -> bool {
        self.pool.load_u64(self.off + LEVEL_OFF) & DELETED_BIT != 0
    }

    /// Sets the level field, clearing flags.
    pub fn set_level(&self, level: u32) {
        self.pool.store_u64(self.off + LEVEL_OFF, u64::from(level));
    }

    /// Marks the node logically deleted.
    pub fn mark_deleted(&self) {
        let v = self.pool.load_u64(self.off + LEVEL_OFF);
        self.pool.store_u64(self.off + LEVEL_OFF, v | DELETED_BIT);
    }

    /// Writer-maintained count hint. Advisory: may be stale after a crash.
    pub fn count_hint(&self) -> u16 {
        let c = self.pool.load_u64(self.off + COUNT_OFF);
        (c.min(u64::from(self.capacity()))) as u16
    }

    /// Stores the count hint.
    pub fn set_count_hint(&self, v: u16) {
        self.pool.store_u64(self.off + COUNT_OFF, u64::from(v));
    }

    /// Pool offset of the embedded lock word.
    pub fn lock_word_off(&self) -> PmOffset {
        self.off + LOCK_OFF
    }

    // ---- circular frame --------------------------------------------------

    /// The head snapshot this view maps logical slots with.
    #[inline]
    pub fn head_snapshot(&self) -> u16 {
        self.head
    }

    /// Loads the current persistent head (not the snapshot).
    #[inline]
    pub fn head_raw(&self) -> u16 {
        (self.pool.load_u64(self.off + HEAD_OFF) % u64::from(self.slots())) as u16
    }

    /// Re-snapshots the head so subsequent accesses use the current frame
    /// (no-op for non-circular geometry).
    #[inline]
    pub fn reframe(&mut self) {
        if self.geom.circular {
            self.head = self.head_raw();
        }
    }

    /// True when the persistent head still matches this view's snapshot
    /// (always true for non-circular geometry). Readers pair this with the
    /// switch-counter recheck: a scan is only trusted if *both* held.
    #[inline]
    pub fn head_unchanged(&self) -> bool {
        !self.geom.circular || self.head_raw() == self.head
    }

    /// Stores a new head (not flushed) and updates this view's snapshot.
    /// Writers must bump the switch counter *before* this store so readers
    /// on the old frame fail their head recheck (see the circular shift
    /// protocol in `insert.rs`/`delete.rs`).
    pub fn set_head(&mut self, h: u16) {
        let h = h % self.slots();
        self.pool.store_u64(self.off + HEAD_OFF, u64::from(h));
        self.head = h;
    }

    /// Pool offset of the head field (for targeted persists).
    pub fn head_field_off(&self) -> PmOffset {
        self.off + HEAD_OFF
    }

    /// Maps a logical slot index to its physical slot in the record area.
    #[inline]
    pub fn phys(&self, i: u16) -> u16 {
        if self.geom.circular {
            (self.head + i) % self.slots()
        } else {
            i
        }
    }

    // ---- fingerprints ----------------------------------------------------

    /// Loads the fingerprint seal word (1 = array consistent and durable).
    #[inline]
    pub fn fp_seal(&self) -> u64 {
        self.pool.load_u64(self.off + SEAL_OFF)
    }

    /// True when leaf fingerprint probes may be trusted right now.
    #[inline]
    pub fn fp_sealed(&self) -> bool {
        self.geom.fingerprints && self.fp_seal() == 1
    }

    /// Breaks the fingerprint seal durably before mutating records, so no
    /// crash image can pair a durable seal with a half-updated array.
    /// No-op on non-fingerprint geometry, internal nodes, and already
    /// unsealed nodes (volatile 0 implies durable 0: the only writer of 0
    /// persists it, and recovery starts from the durable image).
    ///
    /// Returns whether the array *was* sealed — i.e. consistent with the
    /// records — which tells the writer whether incremental lockstep
    /// maintenance suffices or the array must be rebuilt before resealing
    /// (see [`fp_reseal_after`](NodeRef::fp_reseal_after)).
    pub fn fp_unseal(&self) -> bool {
        if self.geom.fingerprints && self.is_leaf() && self.fp_seal() == 1 {
            self.pool.store_u64(self.off + SEAL_OFF, 0);
            self.pool.persist(self.off + SEAL_OFF, 8);
            return true;
        }
        false
    }

    /// Re-arms the seal after a mutation. With `was_sealed` (the array was
    /// consistent when [`fp_unseal`](NodeRef::fp_unseal) broke it) the
    /// writer's lockstep fingerprint stores kept it consistent and a plain
    /// reseal suffices; otherwise — a node inherited unsealed from a crash
    /// — the array is rebuilt from the records first.
    pub fn fp_reseal_after(&self, was_sealed: bool) {
        if !self.geom.fingerprints || !self.is_leaf() {
            return;
        }
        if !was_sealed {
            self.rebuild_fps();
        }
        self.fp_reseal();
    }

    /// Flushes the fingerprint lines, fences, then re-arms the seal with a
    /// plain store. A crash image that includes the (unflushed) seal store
    /// necessarily includes the earlier-flushed fingerprint lines, so a
    /// durable seal always certifies a durable, consistent array.
    pub fn fp_reseal(&self) {
        if !self.geom.fingerprints || !self.is_leaf() {
            return;
        }
        for l in 0..fp_lines(self.node_size) {
            self.pool
                .flush_line(self.off + HEADER_SIZE + l * CACHE_LINE as u64);
        }
        self.pool.sfence();
        self.pool.store_u64(self.off + SEAL_OFF, 1);
    }

    /// Pool offset of logical slot `i`'s fingerprint byte.
    #[inline]
    pub fn fp_off(&self, i: u16) -> PmOffset {
        self.off + HEADER_SIZE + u64::from(self.phys(i))
    }

    /// Loads logical slot `i`'s fingerprint byte (0 when the geometry has
    /// no fingerprint area).
    #[inline]
    pub fn fp(&self, i: u16) -> u8 {
        if !self.geom.fingerprints {
            return 0;
        }
        self.pool.load_u8(self.fp_off(i))
    }

    /// Stores logical slot `i`'s fingerprint byte (not flushed; callers
    /// flush the whole array in [`fp_reseal`](NodeRef::fp_reseal)). No-op
    /// when the geometry has no fingerprint area, so shift loops can keep
    /// fingerprints in lockstep unconditionally.
    #[inline]
    pub fn set_fp(&self, i: u16, v: u8) {
        if self.geom.fingerprints {
            self.pool.store_u8(self.fp_off(i), v);
        }
    }

    /// Rewrites the whole fingerprint array from the records: `fp_hash` of
    /// the key for every slot below the terminator, 0 above it (the
    /// invariant that lets probes skip terminator checks). Caller reseals.
    pub fn rebuild_fps(&self) {
        if !self.geom.fingerprints {
            return;
        }
        let cnt = self.count_records();
        for i in 0..self.slots() {
            let v = if i < cnt { fp_hash(self.key(i)) } else { 0 };
            self.set_fp(i, v);
        }
    }

    // ---- records ---------------------------------------------------------

    /// Pool offset of record `i`'s key field.
    #[inline]
    pub fn key_off(&self, i: u16) -> PmOffset {
        self.off + records_base(self.node_size, self.geom) + u64::from(self.phys(i)) * RECORD_SIZE
    }

    /// Cache-line index of record `i` — shift loops flush when consecutive
    /// logical slots land on different lines, which in circular geometry
    /// also covers the physical wrap.
    #[inline]
    pub fn rec_line(&self, i: u16) -> u64 {
        self.key_off(i) / CACHE_LINE as u64
    }

    /// Pool offset of record `i`'s pointer field.
    #[inline]
    pub fn ptr_off(&self, i: u16) -> PmOffset {
        self.key_off(i) + 8
    }

    /// Loads record `i`'s key.
    #[inline]
    pub fn key(&self, i: u16) -> u64 {
        self.pool.load_u64(self.key_off(i))
    }

    /// Loads record `i`'s pointer.
    #[inline]
    pub fn ptr(&self, i: u16) -> u64 {
        self.pool.load_u64(self.ptr_off(i))
    }

    /// Stores record `i`'s key.
    #[inline]
    pub fn set_key(&self, i: u16, k: u64) {
        self.pool.store_u64(self.key_off(i), k);
    }

    /// Stores record `i`'s pointer.
    #[inline]
    pub fn set_ptr(&self, i: u16, p: u64) {
        self.pool.store_u64(self.ptr_off(i), p);
    }

    /// The pointer to the *left* of entry `i`: `ptr(i-1)`, or the leftmost
    /// child for `i == 0`. Used for routing (e.g. finding the left sibling
    /// of a merged-away child), not for validity.
    #[inline]
    pub fn left_ptr(&self, i: u16) -> u64 {
        if i == 0 {
            self.leftmost()
        } else {
            self.ptr(i - 1)
        }
    }

    /// FAST entry validity: a pointer that is neither the NULL terminator
    /// nor the [`INVALID_PTR`] poison sentinel.
    #[inline]
    pub fn entry_valid(&self, i: u16) -> bool {
        let p = self.ptr(i);
        p != NULL_OFFSET && p != INVALID_PTR
    }

    /// Exact number of records before the NULL terminator (counts invalid
    /// entries too, since they occupy slots). O(n) scan; used by writers
    /// that hold the node lock.
    pub fn count_records(&self) -> u16 {
        let cap = self.capacity();
        // Start from the hint and self-heal in either direction.
        let mut c = self.count_hint();
        if c > cap {
            c = cap;
        }
        // The terminator may be earlier than the hint…
        while c > 0 && self.ptr(c - 1) == NULL_OFFSET {
            c -= 1;
        }
        // …or later.
        while c < cap + 1 && self.ptr(c) != NULL_OFFSET {
            c += 1;
        }
        c
    }

    /// Collects the valid `(key, ptr)` entries in slot order, dropping the
    /// exact duplicate of its left neighbour that a finished copy step of
    /// an interrupted shift leaves behind (same key, same value — keys are
    /// unique within a node, so an adjacent repeat is always shift residue).
    pub fn valid_entries(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = Vec::new();
        let mut i = 0u16;
        while i <= self.capacity() {
            let p = self.ptr(i);
            if p == NULL_OFFSET {
                break;
            }
            if p != INVALID_PTR {
                let k = self.key(i);
                if out.last().map(|&(lk, _)| lk) != Some(k) {
                    out.push((k, p));
                }
            }
            i += 1;
        }
        out
    }

    /// Key of the first *valid* entry, if any.
    ///
    /// Lock-free callers (sibling routing) race with concurrent shifts, so
    /// the scan is retried while the switch counter or circular head moves
    /// under it; retries are bounded to stay wait-free for writers that
    /// already hold the lock.
    pub fn first_key(&self) -> Option<u64> {
        let mut n = *self;
        let mut last = None;
        for attempt in 0..8 {
            let sc = n.switch_counter();
            last = n.first_key_unvalidated();
            if n.switch_counter() == sc && n.head_unchanged() {
                return last;
            }
            if attempt < 7 {
                n.reframe();
            }
        }
        last
    }

    fn first_key_unvalidated(&self) -> Option<u64> {
        let mut i = 0u16;
        while i <= self.capacity() {
            let p = self.ptr(i);
            if p == NULL_OFFSET {
                return None;
            }
            if p != INVALID_PTR {
                // TOCTOU: the slot may be rewritten between the pointer
                // check and the key load; re-validate the pointer.
                let k = self.key(i);
                if self.ptr(i) == p {
                    return Some(k);
                }
            }
            i += 1;
        }
        None
    }

    /// Initializes a freshly allocated node (zeroing all record slots).
    ///
    /// Writes are plain stores; the caller persists the node when the
    /// algorithm requires it (e.g. FAIR flushes the whole sibling before
    /// linking it).
    pub fn init(&mut self, level: u32) {
        self.pool.zero_region(self.off, u64::from(self.node_size));
        // A recycled node may have carried a non-zero circular head; the
        // zeroing above reset the field, so reset the view's snapshot too.
        self.head = 0;
        self.set_level(level);
        if level == 0 {
            self.set_leftmost(LEAF_ANCHOR);
            if self.geom.fingerprints {
                // An all-zero fingerprint array is consistent with an
                // empty node, so a fresh leaf starts sealed.
                self.pool.store_u64(self.off + SEAL_OFF, 1);
            }
        }
    }

    /// Charges the read-latency cost of landing on this node (one serial
    /// miss for the header line).
    #[inline]
    pub fn charge_hop(&self) {
        self.pool.charge_serial_reads(1);
    }

    /// Charges a linear scan that touched records `[0, n)` of this node as
    /// prefetch-friendly adjacent lines.
    #[inline]
    pub fn charge_linear_scan(&self, n: u16) {
        if n == 0 {
            return;
        }
        let lines = (u64::from(n) * RECORD_SIZE).div_ceil(CACHE_LINE as u64) as u32;
        self.pool.charge_parallel_lines(lines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;

    fn pool() -> Pool {
        Pool::new(PoolConfig::new().size(1 << 20)).unwrap()
    }

    fn fresh_node(pool: &Pool, size: u32, level: u32) -> NodeRef<'_> {
        fresh_geom_node(pool, size, level, NodeGeom::default())
    }

    fn fresh_geom_node(pool: &Pool, size: u32, level: u32, geom: NodeGeom) -> NodeRef<'_> {
        let off = pool.alloc(u64::from(size), 64).unwrap();
        let mut n = NodeRef::with_geom(pool, off, size, geom);
        n.init(level);
        n
    }

    #[test]
    fn capacity_matches_paper_geometry() {
        // 512-byte node: (512-64)/16 = 28 slots, 26 usable.
        assert_eq!(capacity(512), 26);
        assert_eq!(capacity(256), 10);
        assert_eq!(capacity(1024), 58);
        assert_eq!(capacity(4096), 250);
    }

    #[test]
    fn fingerprint_geometry_reserves_whole_lines() {
        // One fp line covers up to 64 slots; (512-64-64)/16 = 24 slots.
        assert_eq!(fp_lines(512), 1);
        assert_eq!(capacity_with(512, NodeGeom::fingerprinted()), 22);
        assert_eq!(capacity_with(1024, NodeGeom::fingerprinted()), 54);
        // 4096 needs 4 lines: 236 slots > 3*64 bytes, <= 4*64.
        assert_eq!(fp_lines(4096), 4);
        assert_eq!(capacity_with(4096, NodeGeom::fingerprinted()), 234);
        // Every geometry still holds one fp byte per physical slot.
        for ns in [256u32, 512, 1024, 2048, 4096] {
            let g = NodeGeom::fingerprinted();
            assert!(u64::from(capacity_with(ns, g)) + 2 <= fp_lines(ns) * 64);
        }
        // The circular flag alone does not change capacity.
        assert_eq!(capacity_with(512, NodeGeom::circular()), 26);
    }

    #[test]
    fn circular_frame_maps_and_wraps() {
        let p = pool();
        let g = NodeGeom::circular();
        let mut n = fresh_geom_node(&p, 256, 0, g);
        let slots = n.slots();
        assert_eq!(n.head_snapshot(), 0);
        // With head 0 the mapping is the identity.
        assert_eq!(n.key_off(3), n.offset() + HEADER_SIZE + 3 * RECORD_SIZE);
        // Move the head back one: logical 0 lands on the last physical slot.
        n.set_head(slots - 1);
        assert_eq!(n.phys(0), slots - 1);
        assert_eq!(n.phys(1), 0);
        assert!(n.rec_line(0) != n.rec_line(1));
        // A stale view of the same node fails the head recheck.
        let stale = NodeRef::with_geom(&p, n.offset(), 256, g);
        assert!(stale.head_unchanged());
        n.set_head(2);
        assert!(!stale.head_unchanged());
        let mut fresh = stale;
        fresh.reframe();
        assert!(fresh.head_unchanged());
    }

    #[test]
    fn circular_records_roundtrip_across_wrap() {
        let p = pool();
        let mut n = fresh_geom_node(&p, 256, 0, NodeGeom::circular());
        n.set_head(n.slots() - 2);
        for i in 0..5u16 {
            n.set_key(i, u64::from(i) * 10 + 10);
            n.set_ptr(i, u64::from(i) + 100);
        }
        assert_eq!(
            n.valid_entries(),
            vec![(10, 100), (20, 101), (30, 102), (40, 103), (50, 104)]
        );
        assert_eq!(n.count_records(), 5);
        assert_eq!(n.first_key(), Some(10));
    }

    #[test]
    fn fingerprint_seal_dance() {
        let p = pool();
        let n = fresh_geom_node(&p, 512, 0, NodeGeom::fingerprinted());
        // Fresh leaf starts sealed (all-zero array matches empty node).
        assert!(n.fp_sealed());
        n.fp_unseal();
        assert!(!n.fp_sealed());
        n.set_key(0, 42);
        n.set_ptr(0, 7);
        n.set_fp(0, fp_hash(42));
        n.fp_reseal();
        assert!(n.fp_sealed());
        assert_eq!(n.fp(0), fp_hash(42));
        assert_eq!(n.fp(1), 0);
        // Rebuild derives the same array from the records.
        n.set_fp(0, 99);
        n.rebuild_fps();
        assert_eq!(n.fp(0), fp_hash(42));
        assert_eq!(n.fp(3), 0);
        // Internal nodes never participate in the dance.
        let m = fresh_geom_node(&p, 512, 1, NodeGeom::fingerprinted());
        assert!(!m.fp_sealed());
        m.fp_reseal();
        assert!(!m.fp_sealed());
    }

    #[test]
    fn fp_hash_never_zero() {
        for k in [0u64, 1, 42, u64::MAX, 0x123456789abcdef0] {
            assert_ne!(fp_hash(k), 0);
        }
    }

    #[test]
    fn header_roundtrip() {
        let p = pool();
        let n = fresh_node(&p, 512, 3);
        assert_eq!(n.level(), 3);
        assert!(!n.is_leaf());
        assert!(!n.is_deleted());
        n.set_sibling(4096);
        assert_eq!(n.sibling(), 4096);
        n.set_switch_counter(5);
        assert_eq!(n.switch_counter(), 5);
        n.set_count_hint(7);
        assert_eq!(n.count_hint(), 7);
        n.mark_deleted();
        assert!(n.is_deleted());
        assert_eq!(n.level(), 3);
    }

    #[test]
    fn leaf_gets_anchor() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        assert!(n.is_leaf());
        assert_eq!(n.leftmost(), LEAF_ANCHOR);
        assert_eq!(n.left_ptr(0), LEAF_ANCHOR);
    }

    #[test]
    fn validity_rules() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        // Empty: entry 0 has NULL ptr -> invalid.
        assert!(!n.entry_valid(0));
        n.set_key(0, 10);
        n.set_ptr(0, 100);
        assert!(n.entry_valid(0));
        // A duplicate *value* on a different key is perfectly valid: values
        // are arbitrary u64s, not unique pointers (see the module docs).
        n.set_key(1, 20);
        n.set_ptr(1, 100);
        assert!(n.entry_valid(1));
        n.set_ptr(1, 200);
        assert!(n.entry_valid(1));
        // The poison sentinel marks an entry invalid at any slot.
        n.set_ptr(1, INVALID_PTR);
        assert!(!n.entry_valid(1));
        n.set_ptr(1, 200);
        // Anchor in entry 0 marks it invalid (leaf pos-0 shift state): the
        // anchor shares the sentinel's bit pattern.
        n.set_ptr(0, LEAF_ANCHOR);
        assert!(!n.entry_valid(0));
        assert!(n.entry_valid(1));
    }

    #[test]
    fn count_records_self_heals_stale_hint() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        for i in 0..5u16 {
            n.set_key(i, u64::from(i) * 10 + 10);
            n.set_ptr(i, u64::from(i) + 100);
        }
        n.set_count_hint(0); // stale low
        assert_eq!(n.count_records(), 5);
        n.set_count_hint(20); // stale high
        assert_eq!(n.count_records(), 5);
    }

    #[test]
    fn valid_entries_skips_poison_and_shift_residue() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        n.set_key(0, 10);
        n.set_ptr(0, 100);
        n.set_key(1, 15);
        n.set_ptr(1, INVALID_PTR); // poisoned mid-shift slot -> garbage
        n.set_key(2, 20);
        n.set_ptr(2, 200);
        n.set_key(3, 20);
        n.set_ptr(3, 200); // exact adjacent duplicate -> shift residue
        n.set_key(4, 30);
        n.set_ptr(4, 200); // same value, different key -> valid
        assert_eq!(n.valid_entries(), vec![(10, 100), (20, 200), (30, 200)]);
        assert_eq!(n.first_key(), Some(10));
    }

    #[test]
    fn first_key_none_for_empty() {
        let p = pool();
        let n = fresh_node(&p, 512, 0);
        assert_eq!(n.first_key(), None);
    }

    #[test]
    fn init_clears_stale_records() {
        let p = pool();
        let off = p.alloc(512, 64).unwrap();
        let mut n = NodeRef::new(&p, off, 512);
        n.set_key(3, 333);
        n.set_ptr(3, 334);
        n.init(0);
        assert_eq!(n.key(3), 0);
        assert_eq!(n.ptr(3), 0);
        assert_eq!(n.count_records(), 0);
    }
}
