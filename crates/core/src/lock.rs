//! Embedded per-node reader-writer spin lock.
//!
//! The paper's implementation guards each node with a `std::mutex` for
//! writers; readers are lock-free by default, or take *leaf read locks* in
//! the serializable `FAST+FAIR+LeafLock` variant (§4.1, Fig. 7). We embed a
//! word-sized RW spin lock in the node header. The lock word is volatile
//! state: it is never flushed, never crash-logged, and is reset when a pool
//! is reopened (see `recovery`).
//!
//! Layout of the lock word: bit 63 = writer held; bits 0..62 = reader count.

use pmem::{PmOffset, Pool};

const WRITER: u64 = 1 << 63;

/// Acquires the write lock at `off`, spinning until free.
pub fn lock_write(pool: &Pool, off: PmOffset) {
    loop {
        if pool.cas_u64_volatile(off, 0, WRITER).is_ok() {
            return;
        }
        while pool.load_u64(off) != 0 {
            std::hint::spin_loop();
        }
    }
}

/// Tries once to acquire the write lock; returns `true` on success.
pub fn try_lock_write(pool: &Pool, off: PmOffset) -> bool {
    pool.cas_u64_volatile(off, 0, WRITER).is_ok()
}

/// Releases the write lock.
pub fn unlock_write(pool: &Pool, off: PmOffset) {
    debug_assert_eq!(pool.load_u64(off) & WRITER, WRITER);
    pool.store_u64_volatile(off, 0);
}

/// Acquires a shared read lock (used only by the LeafLock variant).
pub fn lock_read(pool: &Pool, off: PmOffset) {
    loop {
        let w = pool.load_u64(off);
        if w & WRITER == 0 && pool.cas_u64_volatile(off, w, w + 1).is_ok() {
            return;
        }
        std::hint::spin_loop();
    }
}

/// Releases a shared read lock.
pub fn unlock_read(pool: &Pool, off: PmOffset) {
    let prev = pool.fetch_sub_u64_volatile(off, 1);
    debug_assert!(prev & !WRITER > 0, "read-unlock without lock");
}

/// RAII guard for a node write lock.
pub struct WriteGuard<'a> {
    pool: &'a Pool,
    off: PmOffset,
    armed: bool,
}

impl<'a> WriteGuard<'a> {
    /// Acquires the write lock at `off`.
    pub fn lock(pool: &'a Pool, off: PmOffset) -> Self {
        lock_write(pool, off);
        WriteGuard {
            pool,
            off,
            armed: true,
        }
    }

    /// Releases the lock early (before drop).
    pub fn unlock(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if self.armed {
            unlock_write(self.pool, self.off);
            self.armed = false;
        }
    }
}

impl Drop for WriteGuard<'_> {
    fn drop(&mut self) {
        self.release();
    }
}

/// RAII guard for a node read lock.
pub struct ReadGuard<'a> {
    pool: &'a Pool,
    off: PmOffset,
}

impl<'a> ReadGuard<'a> {
    /// Acquires a read lock at `off`.
    pub fn lock(pool: &'a Pool, off: PmOffset) -> Self {
        lock_read(pool, off);
        ReadGuard { pool, off }
    }
}

impl Drop for ReadGuard<'_> {
    fn drop(&mut self) {
        unlock_read(self.pool, self.off);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmem::PoolConfig;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn pool() -> Arc<Pool> {
        Arc::new(Pool::new(PoolConfig::new().size(1 << 16)).unwrap())
    }

    #[test]
    fn write_lock_excludes_writers() {
        let p = pool();
        let off = p.alloc(8, 8).unwrap();
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let p = Arc::clone(&p);
            let c = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    let _g = WriteGuard::lock(&p, off);
                    // Non-atomic-looking RMW protected by the lock.
                    let v = c.load(Ordering::Relaxed);
                    c.store(v + 1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
        assert_eq!(p.load_u64(off), 0, "lock word released");
    }

    #[test]
    fn readers_share_writers_exclude() {
        let p = pool();
        let off = p.alloc(8, 8).unwrap();
        lock_read(&p, off);
        lock_read(&p, off);
        assert!(!try_lock_write(&p, off));
        unlock_read(&p, off);
        assert!(!try_lock_write(&p, off));
        unlock_read(&p, off);
        assert!(try_lock_write(&p, off));
        unlock_write(&p, off);
    }

    #[test]
    fn guard_releases_on_drop() {
        let p = pool();
        let off = p.alloc(8, 8).unwrap();
        {
            let _g = WriteGuard::lock(&p, off);
            assert!(!try_lock_write(&p, off));
        }
        assert!(try_lock_write(&p, off));
        unlock_write(&p, off);
    }

    #[test]
    fn explicit_unlock_consumes_guard() {
        let p = pool();
        let off = p.alloc(8, 8).unwrap();
        let g = WriteGuard::lock(&p, off);
        g.unlock();
        assert!(try_lock_write(&p, off));
    }

    #[test]
    fn lock_word_not_in_crash_log() {
        let p = Pool::new(PoolConfig::new().size(1 << 16).crash_log(true)).unwrap();
        let off = p.alloc(8, 8).unwrap();
        let before = p.crash_log().unwrap().len();
        lock_write(&p, off);
        unlock_write(&p, off);
        lock_read(&p, off);
        unlock_read(&p, off);
        assert_eq!(p.crash_log().unwrap().len(), before);
    }
}
