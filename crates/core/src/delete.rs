//! FAST deletion (left shift) and the lazy in-node repair used by all
//! writers.
//!
//! Deleting entry `d` is committed by a *single* 8-byte store: overwriting
//! `ptr(d)` with the [`INVALID_PTR`] poison makes the entry invalid to
//! every reader. The subsequent left-shift compaction only reclaims the
//! slot; if it is lost in a crash, the node merely contains one garbage
//! entry that the next writer removes (§4.2 "lazy recovery").
//!
//! Because a left shift moves entries toward lower slots, concurrent
//! lock-free readers must scan **right to left** while a delete is in
//! flight; the writer flips the node's switch counter to odd before
//! shifting (§4).

use pmem::{stats, NULL_OFFSET};
use pmindex::Key;

use crate::layout::{NodeRef, INVALID_PTR};
use crate::lock::WriteGuard;
use crate::tree::FastFairTree;

/// Flips a node into delete (right-to-left) scan direction.
///
/// A FAIR truncation leaves stale record copies *above* the NULL
/// terminator (the moved-out upper half). Left-to-right readers stop at
/// the terminator and never see them, but a right-to-left reader starts
/// above them — so before the switch counter goes odd, any stale pointers
/// above the terminator are nulled and **persisted**; only then is the
/// direction flipped. The flush ordering guarantees that a crash can
/// never persist an odd switch counter without the nulled slots.
///
/// (The original implementation trusts its `last_index` hint here and can
/// read a truncated node's stale slots after a delete; this is the second
/// documented deviation in DESIGN.md §3.1.)
pub(crate) fn enter_delete_direction(tree: &FastFairTree, node: NodeRef<'_>, cnt: u16) {
    let sc = node.switch_counter();
    if sc % 2 == 1 {
        // Already in delete direction: still bump the counter so readers
        // that overlap this shift see a changed value at their re-check —
        // consecutive same-direction shifts must not be invisible to the
        // retry protocol.
        node.set_switch_counter(sc + 2);
        return;
    }
    let pool = node.pool();
    let last_slot = tree.cap + 1; // slots are 0..=cap+1
    let mut dirty = false;
    let mut i = cnt + 1;
    while i <= last_slot {
        if node.ptr(i) != NULL_OFFSET {
            node.set_ptr(i, NULL_OFFSET);
            dirty = true;
        }
        i += 1;
    }
    if dirty {
        // Flush the nulled range line by line: in circular geometry the
        // logical range may wrap to a non-contiguous pair of physical
        // spans, so a single contiguous persist would miss lines.
        let mut last_line = u64::MAX;
        for i in cnt + 1..=last_slot {
            let line = node.rec_line(i);
            if line != last_line {
                pool.flush_line(node.key_off(i));
                last_line = line;
            }
        }
        pool.sfence();
    }
    node.set_switch_counter(sc + 1);
}

/// Public delete path: removes `key` from its leaf. Returns whether the key
/// was present.
pub(crate) fn tree_remove(tree: &FastFairTree, key: Key) -> bool {
    'retry: loop {
        let off = stats::timed(stats::Phase::Search, || tree.find_leaf(key));
        let mut guard = WriteGuard::lock(&tree.pool, tree.node(off).lock_word_off());
        let mut node = tree.node(off);
        loop {
            if node.is_deleted() {
                guard.unlock();
                continue 'retry;
            }
            repair_node_locked(tree, node);
            match tree.covering_sibling(node, key) {
                Some(sib) => {
                    let next = WriteGuard::lock(&tree.pool, tree.node(sib).lock_word_off());
                    guard.unlock();
                    guard = next;
                    node = tree.node(sib);
                }
                None => break,
            }
        }
        let mut emptied = false;
        let removed = match crate::insert::find_valid_slot(node, key) {
            None => false,
            Some(d) => {
                stats::timed(stats::Phase::Update, || {
                    let cnt = node.count_records();
                    // The records are about to move: break the fingerprint
                    // seal durably first, reseal after.
                    let was_sealed = node.fp_unseal();
                    if node.geom().circular && d < cnt / 2 {
                        // Fewer records below the victim than above it:
                        // shift the short left side right and advance the
                        // head instead.
                        circ_remove_low(tree, node, d, cnt);
                    } else {
                        // Readers must scan right-to-left from now on.
                        enter_delete_direction(tree, node, cnt);
                        // Commit: one atomic poison store invalidates the
                        // entry.
                        node.set_ptr(d, INVALID_PTR);
                        tree.pool.fence_if_not_tso();
                        // Reclaim the slot; a crash here leaves one garbage
                        // entry for lazy recovery.
                        shift_left_from(tree, node, d, cnt);
                        node.set_count_hint(cnt - 1);
                    }
                    node.fp_reseal_after(was_sealed);
                    emptied = cnt == 1;
                });
                true
            }
        };
        let node_off = node.offset();
        guard.unlock();
        if emptied {
            // FAIR merge (§4.2): try to unlink the now-empty leaf. Best
            // effort — any bail-out leaves a harmless pass-through node.
            tree.try_unlink_empty_leaf(node_off, key);
        }
        return removed;
    }
}

/// Left-shift compaction: removes the record at slot `d` by copying each
/// higher record one slot down — poisoning the destination, then key, then
/// pointer — flushing lines in shift order. `cnt` is the index of the
/// terminator. Works whether slot `d` was already poisoned (the delete
/// commit) or still holds a complete record (repair compacting an exact
/// shift-residue duplicate): the poison store invalidates it either way.
pub(crate) fn shift_left_from(_tree: &FastFairTree, node: NodeRef<'_>, d: u16, cnt: u16) {
    debug_assert!(d < cnt);
    let pool = node.pool();
    for j in d..cnt {
        node.set_ptr(j, INVALID_PTR);
        pool.fence_if_not_tso();
        node.set_key(j, node.key(j + 1));
        pool.fence_if_not_tso();
        node.set_ptr(j, node.ptr(j + 1));
        // Fingerprints ride along; the terminator slot's 0 propagates down
        // with it, keeping the above-terminator-zero invariant.
        node.set_fp(j, node.fp(j + 1));
        pool.fence_if_not_tso();
        if node.rec_line(j + 1) != node.rec_line(j) {
            // Record j completed its cache line: flush before moving on.
            pool.persist(node.key_off(j), 8);
        }
    }
    // Flush the line holding the last copied record (which now carries the
    // new NULL terminator).
    pool.persist(node.key_off(cnt.saturating_sub(1).max(d)), 16);
    stats::count_shift(u64::from(cnt - d).saturating_sub(1));
}

/// Circular-frame delete on the *short* left side: instead of pulling the
/// `cnt - d - 1` records above slot `d` one slot left, copy the `d` records
/// below it one slot right and advance the head. Store/persist protocol:
///
/// 1. The switch counter is bumped *even* — the records move right here, so
///    surviving readers must scan left-to-right — and bumped again before
///    the head store so a reader that observes any post-flip store fails
///    its head recheck (TSO orders the bumps first).
/// 2. The poison store at `d` commits the delete.
/// 3. Records `d-1..=0` are copied one slot right, descending, with the
///    poison/key/commit discipline and line-crossing flushes, and the
///    remaining dirty line is persisted — the whole right-shifted image is
///    durable *before* the head moves, so a post-flip crash image in the
///    new frame is complete.
/// 4. `head' = head+1` is stored and persisted. The vacated physical slot
///    (new logical `cap+1`, above the terminator) is nulled with plain
///    stores: no reader reaches it (left-to-right scans stop at the
///    terminator, right-to-left scans start at or below `cap`), and the
///    next [`enter_delete_direction`] nulls it durably before the scan
///    direction could expose it.
fn circ_remove_low(_tree: &FastFairTree, node: NodeRef<'_>, d: u16, cnt: u16) {
    debug_assert!(d < cnt / 2);
    let pool = node.pool();
    let mut node = node;
    let cap = node.capacity();

    let sc = node.switch_counter();
    node.set_switch_counter(if sc % 2 == 1 { sc + 1 } else { sc + 2 });

    node.set_ptr(d, INVALID_PTR);
    pool.fence_if_not_tso();

    for j in (0..d).rev() {
        if j + 1 < d {
            node.set_ptr(j + 1, INVALID_PTR);
            pool.fence_if_not_tso();
        }
        node.set_key(j + 1, node.key(j));
        pool.fence_if_not_tso();
        node.set_ptr(j + 1, node.ptr(j));
        node.set_fp(j + 1, node.fp(j));
        pool.fence_if_not_tso();
        if node.rec_line(j + 1) != node.rec_line(j) {
            // Record j+1 completed its cache line: flush before moving on.
            pool.persist(node.key_off(j + 1), 8);
        }
    }
    // Make the right-shifted image durable before the frame flips.
    if d == 0 {
        pool.persist(node.key_off(0), 8);
    } else {
        pool.persist(node.key_off(1), 16);
    }

    let sc = node.switch_counter();
    node.set_switch_counter(sc + 2);
    let slots = node.slots();
    node.set_head((node.head_snapshot() + 1) % slots);
    pool.persist(node.head_field_off(), 8);

    // `node` now views the new frame; the vacated slot sits above the
    // terminator at logical cap+1.
    node.set_ptr(cap + 1, NULL_OFFSET);
    node.set_fp(cap + 1, 0);
    node.set_count_hint(cnt - 1);
    stats::count_shift(u64::from(d));
}

/// Lazy recovery, run by every writer right after locking a node (§4.2):
///
/// 1. completes a half-finished FAIR split — if the right sibling's first
///    key falls inside this node's key range (Fig. 2 state (2)), the
///    truncation store is re-issued;
/// 2. removes garbage entries — poisoned slots ([`INVALID_PTR`]) and exact
///    duplicates of their left neighbour (same key and pointer) — the
///    residue of a crashed FAST shift or delete compaction.
///
/// Idempotent and cheap on clean nodes (one linear scan).
pub(crate) fn repair_node_locked(tree: &FastFairTree, node: NodeRef<'_>) {
    let pool = node.pool();
    let mut repaired = false;

    // Step 1: complete a crashed split's truncation.
    let sib_off = node.sibling();
    if sib_off != NULL_OFFSET {
        let sib = tree.node(sib_off);
        if let Some(sfk) = sib.first_key() {
            let cnt = node.count_records();
            // Find the first slot whose key is >= the sibling's first key;
            // in a clean node no such slot exists.
            let mut s: Option<u16> = None;
            for i in 0..cnt {
                if node.entry_valid(i) && node.key(i) >= sfk {
                    s = Some(i);
                    break;
                }
            }
            if let Some(s) = s {
                node.fp_unseal();
                node.set_ptr(s, NULL_OFFSET);
                pool.persist(node.ptr_off(s), 8);
                node.set_count_hint(s);
                repaired = true;
            }
        }
    }

    // Step 2: compact away shift garbage — poisoned slots and exact
    // adjacent duplicates (keys are unique within a node, so an adjacent
    // repeat is always the residue of an interrupted shift copy).
    loop {
        let cnt = node.count_records();
        let mut fixed = false;
        for i in 0..cnt {
            let p = node.ptr(i);
            let residue =
                p == INVALID_PTR || (p != NULL_OFFSET && i > 0 && node.key(i) == node.key(i - 1));
            if residue {
                node.fp_unseal();
                enter_delete_direction(tree, node, cnt);
                shift_left_from(tree, node, i, cnt);
                node.set_count_hint(cnt - 1);
                repaired = true;
                fixed = true;
                break;
            }
        }
        if !fixed {
            break;
        }
    }

    // Anything the node inherited from a crash (including a crash image
    // that lost fingerprint stores but kept its seal broken) is gone now;
    // rebuild the array from the records and re-arm the seal. Clean nodes
    // skip this entirely, so the common write path pays nothing here.
    if repaired && node.is_leaf() {
        node.rebuild_fps();
        node.fp_reseal();
    }
}
