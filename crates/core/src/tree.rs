//! The FAST+FAIR B+-tree: structure, configuration and traversal.
//!
//! The tree is a B-link tree (every node, internal and leaf, carries a right
//! sibling pointer — §3.2) whose node mutations are performed with the FAST
//! and FAIR algorithms so that *every 8-byte store* leaves the tree either
//! consistent or transiently inconsistent in a way readers tolerate.
//!
//! Persistent superblock layout (64 bytes, one cache line):
//!
//! ```text
//!  0  magic
//!  8  root node offset           (updated by a single persisted store —
//!                                 the commit point of a root split)
//! 16  node size in bytes
//! 24  strategy tag               (bit 0: logging split; bit 1: leaf
//!                                 fingerprints; bit 2: circular frame —
//!                                 0 = plain FAIR, kept compatible with
//!                                 the old 0/1 encoding)
//! 32  log head                   (logging variant: node being split, 0 = idle)
//! 40  lock word                  (volatile; serializes root growth)
//! 48  log area offset            (logging variant's preallocated undo buffer)
//! 56  reserved
//! ```

use std::sync::Arc;

use epoch::EpochDomain;
use pmem::{stats, PmOffset, Pool, NULL_OFFSET};
use pmindex::{Cursor, IndexError, Key, PmIndex, Value};

use crate::layout::{capacity, capacity_with, NodeGeom, NodeRef};
use crate::lock::ReadGuard;
use crate::scan::TreeCursor;

pub(crate) const META_MAGIC: u64 = 0x4641_4952_5452_4545; // "FAIRTREE"
pub(crate) const META_ROOT: u64 = 8;
pub(crate) const META_NODE_SIZE: u64 = 16;
pub(crate) const META_STRATEGY: u64 = 24;
pub(crate) const META_LOG_HEAD: u64 = 32;
pub(crate) const META_LOCK: u64 = 40;
pub(crate) const META_LOG_AREA: u64 = 48;

/// How node splits are made failure-atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// FAIR: in-place rebalance through endurable transient inconsistency
    /// (the paper's contribution, Algorithm 2).
    #[default]
    Fair,
    /// Legacy undo-logging rebalance — the `FAST+Logging` baseline of
    /// Fig. 5(a)/(c), 7–18 % slower due to log flushes.
    Logging,
}

/// In-node search algorithm (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InNodeSearch {
    /// Linear scan — required for lock-free reads, faster below 4 KB nodes.
    #[default]
    Linear,
    /// Binary search — incompatible with lock-free reads (§4); available
    /// for the single-threaded Fig. 3 comparison only.
    Binary,
}

/// Construction options for a [`FastFairTree`].
#[derive(Debug, Clone, Copy)]
pub struct TreeOptions {
    /// Node size in bytes (power of two, 256–4096 in the paper's sweep).
    pub node_size: u32,
    /// Split strategy (FAIR vs. logging).
    pub split: SplitStrategy,
    /// In-node search algorithm.
    pub search: InNodeSearch,
    /// `FAST+FAIR+LeafLock` (§4.1): readers take leaf read locks, trading a
    /// little concurrency for serializable reads.
    pub leaf_locks: bool,
    /// Leaf fingerprint probes (see [`NodeGeom::fingerprints`]).
    pub fingerprints: bool,
    /// Circular record frame (see [`NodeGeom::circular`]).
    pub circular: bool,
}

impl TreeOptions {
    /// The paper's default configuration: 512-byte nodes, FAIR splits,
    /// linear search, lock-free reads.
    pub fn new() -> Self {
        TreeOptions {
            node_size: 512,
            split: SplitStrategy::Fair,
            search: InNodeSearch::Linear,
            leaf_locks: false,
            fingerprints: false,
            circular: false,
        }
    }

    /// Sets the node size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the size is not a multiple of 64 or holds fewer than four
    /// records.
    pub fn node_size(mut self, bytes: u32) -> Self {
        assert!(
            bytes.is_multiple_of(64),
            "node size must be a multiple of 64"
        );
        let _ = capacity(bytes); // panics if too small
        self.node_size = bytes;
        self
    }

    /// Selects the split strategy.
    pub fn split(mut self, s: SplitStrategy) -> Self {
        self.split = s;
        self
    }

    /// Selects the in-node search algorithm.
    pub fn search(mut self, s: InNodeSearch) -> Self {
        self.search = s;
        self
    }

    /// Enables leaf read locks (serializable reads).
    pub fn leaf_locks(mut self, on: bool) -> Self {
        self.leaf_locks = on;
        self
    }

    /// Enables leaf fingerprint probes.
    pub fn fingerprints(mut self, on: bool) -> Self {
        self.fingerprints = on;
        self
    }

    /// Enables the circular record frame.
    pub fn circular(mut self, on: bool) -> Self {
        self.circular = on;
        self
    }

    /// The node geometry these options describe.
    pub fn geom(&self) -> NodeGeom {
        NodeGeom {
            fingerprints: self.fingerprints,
            circular: self.circular,
        }
    }
}

impl Default for TreeOptions {
    fn default() -> Self {
        TreeOptions::new()
    }
}

/// A failure-atomic persistent B+-tree using FAST in-node shifts and FAIR
/// in-place rebalancing.
///
/// Writers take one node latch at a time; readers are non-blocking (or take
/// leaf read locks when [`TreeOptions::leaf_locks`] is set). All data lives
/// in a [`pmem::Pool`]; reopening the pool and calling
/// [`FastFairTree::open`] recovers the tree instantly, and
/// [`FastFairTree::recover`] eagerly repairs any transient inconsistency a
/// crash left behind.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pmem::{Pool, PoolConfig};
/// use fastfair::{FastFairTree, TreeOptions};
/// use pmindex::PmIndex;
///
/// let pool = Arc::new(Pool::new(PoolConfig::default().size(1 << 20))?);
/// let tree = FastFairTree::create(Arc::clone(&pool), TreeOptions::new())?;
/// tree.insert(42, 4242)?;
/// assert_eq!(tree.get(42), Some(4242));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct FastFairTree {
    pub(crate) pool: Arc<Pool>,
    pub(crate) meta: PmOffset,
    pub(crate) node_size: u32,
    pub(crate) cap: u16,
    pub(crate) opts: TreeOptions,
    /// Epoch-based reclamation domain. Lock-free readers may still be
    /// traversing a node a FAIR merge just unlinked, so the merge path
    /// *retires* the block into this domain's limbo lists; once two
    /// epochs have passed — every reader pinned at retirement time has
    /// left its critical section — the block returns to [`Pool::free`]
    /// **while traffic is live**. [`FastFairTree::recover`] and `Drop`
    /// (both quiescent by contract) flush whatever is still in limbo.
    /// Limbo is volatile by design: a crash empties it and the blocks
    /// leak, matching PM allocators without offline GC.
    pub(crate) epoch: Arc<EpochDomain>,
    name: &'static str,
}

impl std::fmt::Debug for FastFairTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastFairTree")
            .field("meta", &self.meta)
            .field("node_size", &self.node_size)
            .field("height", &self.height())
            .field("opts", &self.opts)
            .finish()
    }
}

impl FastFairTree {
    /// Creates a new empty tree in `pool` and returns its handle.
    ///
    /// The tree's superblock offset ([`meta_offset`](Self::meta_offset))
    /// identifies it inside the pool; applications managing several trees
    /// (e.g. the TPC-C tables) store those offsets in their own directory
    /// object.
    ///
    /// # Errors
    ///
    /// Returns an error if the pool cannot fit the superblock and root node.
    pub fn create(pool: Arc<Pool>, opts: TreeOptions) -> Result<Self, IndexError> {
        let node_size = opts.node_size;
        let meta = pool.alloc(64, 64)?;
        pool.zero_region(meta, 64);
        let root = pool.alloc(u64::from(node_size), 64)?;
        NodeRef::with_geom(&pool, root, node_size, opts.geom()).init(0);
        pool.persist(root, u64::from(node_size));
        pool.store_u64(meta, META_MAGIC);
        pool.store_u64(meta + META_NODE_SIZE, u64::from(node_size));
        let mut strategy = match opts.split {
            SplitStrategy::Fair => 0,
            SplitStrategy::Logging => 1,
        };
        if opts.fingerprints {
            strategy |= 2;
        }
        if opts.circular {
            strategy |= 4;
        }
        pool.store_u64(meta + META_STRATEGY, strategy);
        if opts.split == SplitStrategy::Logging {
            // Undo buffer: 8-byte target tag + a full node image.
            let area = pool.alloc(8 + u64::from(node_size), 64)?;
            pool.store_u64(meta + META_LOG_AREA, area);
        }
        pool.store_u64(meta + META_ROOT, root);
        pool.persist(meta, 64);
        Ok(Self::with_meta(pool, meta, node_size, opts))
    }

    /// Opens the tree whose superblock is at `meta` (instant recovery).
    ///
    /// If the tree uses the logging split strategy and a crash interrupted a
    /// split, the undo log is rolled back here. FAIR trees need no undo:
    /// readers tolerate the crash state, and [`recover`](Self::recover) (or
    /// ordinary writer traffic) repairs it lazily.
    ///
    /// # Errors
    ///
    /// Returns [`IndexError::PoolExhausted`] wrapping a description if the
    /// superblock magic does not match.
    pub fn open(pool: Arc<Pool>, meta: PmOffset, opts: TreeOptions) -> Result<Self, IndexError> {
        if pool.load_u64(meta) != META_MAGIC {
            return Err(IndexError::PoolExhausted(format!(
                "no tree superblock at offset {meta:#x}"
            )));
        }
        let node_size = pool.load_u64(meta + META_NODE_SIZE) as u32;
        let mut opts = opts;
        opts.node_size = node_size;
        let strategy = pool.load_u64(meta + META_STRATEGY);
        opts.split = if strategy & 1 == 1 {
            SplitStrategy::Logging
        } else {
            SplitStrategy::Fair
        };
        opts.fingerprints = strategy & 2 != 0;
        opts.circular = strategy & 4 != 0;
        let tree = Self::with_meta(pool, meta, node_size, opts);
        tree.undo_log_rollback();
        Ok(tree)
    }

    fn with_meta(pool: Arc<Pool>, meta: PmOffset, node_size: u32, opts: TreeOptions) -> Self {
        let name = match (opts.split, opts.leaf_locks, opts.search) {
            (SplitStrategy::Logging, _, _) => "FAST+Logging",
            (SplitStrategy::Fair, true, _) => "FAST+FAIR+LeafLock",
            (SplitStrategy::Fair, false, InNodeSearch::Binary) => "FAST+FAIR(binary)",
            (SplitStrategy::Fair, false, InNodeSearch::Linear) => {
                match (opts.fingerprints, opts.circular) {
                    (true, true) => "FAST+FAIR+FP+Circ",
                    (true, false) => "FAST+FAIR+FP",
                    (false, true) => "FAST+FAIR+Circ",
                    (false, false) => "FAST+FAIR",
                }
            }
        };
        FastFairTree {
            pool,
            meta,
            node_size,
            cap: capacity_with(node_size, opts.geom()),
            opts,
            epoch: EpochDomain::new(),
            name,
        }
    }

    /// The tree's epoch-based reclamation domain — exposed so tests,
    /// tooling and reclamation policies can observe or drive the clock
    /// (e.g. force a deterministic advance/collect between phases).
    pub fn epoch(&self) -> &Arc<EpochDomain> {
        &self.epoch
    }

    /// The pool this tree lives in.
    pub fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }

    /// Offset of the persistent superblock identifying this tree.
    pub fn meta_offset(&self) -> PmOffset {
        self.meta
    }

    /// Node size in bytes.
    pub fn node_size(&self) -> u32 {
        self.node_size
    }

    /// Records per node.
    pub fn node_capacity(&self) -> u16 {
        self.cap
    }

    /// The configuration this handle was opened with.
    pub fn options(&self) -> &TreeOptions {
        &self.opts
    }

    /// Current root node offset.
    pub(crate) fn root(&self) -> PmOffset {
        self.pool.load_u64(self.meta + META_ROOT)
    }

    /// Tree height: the root's level (0 = the tree is a single leaf).
    pub fn height(&self) -> u32 {
        self.node(self.root()).level()
    }

    /// Borrowed view of the node at `off`, framed by the tree's geometry.
    #[inline]
    pub(crate) fn node(&self, off: PmOffset) -> NodeRef<'_> {
        NodeRef::with_geom(&self.pool, off, self.node_size, self.opts.geom())
    }

    /// Descends from the root to the leaf whose key range contains `key`,
    /// lock-free.
    ///
    /// Read-latency charging models the paper's testbed: the few upper
    /// levels of a B+-tree stay resident in the CPU's last-level cache
    /// (Quartz stalls only real LLC misses), so only the two lowest levels
    /// — the large, cold ones — are charged as PM misses.
    pub(crate) fn find_leaf(&self, key: Key) -> PmOffset {
        let mut off = self.root();
        let mut node = self.node(off);
        if node.level() <= 1 {
            node.charge_hop();
        }
        while !node.is_leaf() {
            off = self.route(node, key);
            node = self.node(off);
            if node.level() <= 1 {
                node.charge_hop();
            }
        }
        off
    }

    /// Chooses the next node when standing on internal node `node` looking
    /// for `key`: either the correct child, or the right sibling when the
    /// key lies beyond this node's range (B-link move-right).
    pub(crate) fn route(&self, node: NodeRef<'_>, key: Key) -> PmOffset {
        // Move right first: the node may have split under us.
        if let Some(sib) = self.covering_sibling(node, key) {
            return sib;
        }
        match self.opts.search {
            InNodeSearch::Linear => self.route_linear(node, key),
            InNodeSearch::Binary => self.route_binary(node, key),
        }
    }

    /// If `key` lies beyond this node's key range, returns the right
    /// sibling to move to (B-link move-right).
    ///
    /// The bound is the first key of the nearest *non-empty* right
    /// sibling: empty pass-through nodes (mid-merge, or a merge bail-out)
    /// hold no keys and never receive new ones, so they are skipped, not
    /// entered — stopping at one would block the rightward walk and make
    /// every live key beyond it unreachable (a reader would miss it, a
    /// writer would insert left of it and break the chain order).
    pub(crate) fn covering_sibling(&self, node: NodeRef<'_>, key: Key) -> Option<PmOffset> {
        let mut sib = node.sibling();
        while sib != NULL_OFFSET {
            let s = self.node(sib);
            match s.first_key() {
                Some(fk) => return (fk <= key).then_some(sib),
                None => sib = s.sibling(),
            }
        }
        None
    }

    /// Direction-aware lock-free child routing (the internal-node analogue
    /// of Algorithm 3).
    fn route_linear(&self, node: NodeRef<'_>, key: Key) -> PmOffset {
        let cap = self.cap;
        let mut node = node;
        loop {
            node.reframe();
            let sc = node.switch_counter();
            let mut child = node.leftmost();
            let mut scanned: u16 = 0;
            if sc.is_multiple_of(2) {
                // Insert direction: scan left to right.
                let mut i: u16 = 0;
                while i <= cap {
                    let p = node.ptr(i);
                    if p == NULL_OFFSET {
                        break;
                    }
                    scanned = i + 1;
                    if p != crate::layout::INVALID_PTR {
                        // Re-read the pointer after reading the key (TOCTOU
                        // guard, as in the original implementation).
                        let k = node.key(i);
                        if p == node.ptr(i) {
                            if key < k {
                                break;
                            }
                            child = p;
                        }
                    }
                    i += 1;
                }
            } else {
                // Delete direction: scan right to left.
                let hint = node.count_hint().min(cap);
                let mut found = false;
                let mut i = cap.min(hint.saturating_add(2));
                loop {
                    let p = node.ptr(i);
                    if p != NULL_OFFSET && p != crate::layout::INVALID_PTR {
                        let k = node.key(i);
                        if p == node.ptr(i) && k <= key {
                            child = p;
                            found = true;
                            break;
                        }
                    }
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                }
                scanned = if found { i + 1 } else { hint };
                if !found {
                    child = node.leftmost();
                }
            }
            // Internal-node lines are LLC-resident on the modelled testbed;
            // no scan charge here (the leaf scan is charged in `search`).
            let _ = scanned;
            if node.switch_counter() == sc && node.head_unchanged() {
                if child == NULL_OFFSET {
                    // Transient empty view; retry.
                    std::hint::spin_loop();
                    continue;
                }
                return child;
            }
        }
    }

    /// Binary-search routing (single-threaded benchmarking only; see
    /// [`InNodeSearch::Binary`]).
    fn route_binary(&self, node: NodeRef<'_>, key: Key) -> PmOffset {
        let cnt = node.count_records();
        if cnt == 0 {
            return node.leftmost();
        }
        // Dependent probes are charged only on the cold (low) levels.
        if node.level() <= 1 {
            let probes = (u32::from(cnt) * 16 / 64).max(1).ilog2() + 1;
            self.pool.charge_serial_reads(probes);
        }
        let (mut lo, mut hi) = (0u16, cnt);
        // Find the first index with key(i) > key.
        while lo < hi {
            let mid = (lo + hi) / 2;
            if node.key(mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            node.leftmost()
        } else {
            node.ptr(lo - 1)
        }
    }

    /// Offset of the leftmost leaf.
    pub(crate) fn leftmost_leaf(&self) -> PmOffset {
        let mut node = self.node(self.root());
        while !node.is_leaf() {
            node = self.node(node.leftmost());
        }
        node.offset()
    }

    /// Visits every live `(key, value)` pair in ascending key order.
    ///
    /// Duplicates from an in-flight or crashed split (the "virtual single
    /// node" state of Fig. 2) are suppressed by the cursor's monotonicity
    /// filter.
    pub fn for_each(&self, mut f: impl FnMut(Key, Value)) {
        let mut c = TreeCursor::new(self);
        while let Some((k, v)) = Cursor::next(&mut c) {
            f(k, v);
        }
    }

    /// Retires an unlinked node into the epoch domain: the block returns
    /// to [`Pool::free`] once two epochs have passed, while traffic is
    /// live (see the `epoch` field docs).
    pub(crate) fn retire_node(&self, off: PmOffset) {
        self.epoch
            .retire_pm(&self.pool, off, u64::from(self.node_size));
    }

    /// Returns every limbo-held node to the pool's free list immediately;
    /// the caller must guarantee no concurrent reader can still hold a
    /// reference (recovery and drop both do).
    pub(crate) fn reclaim_retired(&self) -> usize {
        self.epoch.flush()
    }

    fn get_impl(&self, key: Key) -> Option<Value> {
        let mut off = self.find_leaf(key);
        loop {
            let leaf = self.node(off);
            let _guard = self
                .opts
                .leaf_locks
                .then(|| ReadGuard::lock(&self.pool, leaf.lock_word_off()));
            if let Some(v) = match self.opts.search {
                InNodeSearch::Linear => crate::search::leaf_search_linear(self, leaf, key),
                InNodeSearch::Binary => crate::search::leaf_search_binary(self, leaf, key),
            } {
                return Some(v);
            }
            drop(_guard);
            match self.covering_sibling(leaf, key) {
                Some(sib) => {
                    self.node(sib).charge_hop();
                    off = sib;
                }
                None => return None,
            }
        }
    }
}

/// Router-facing persistence contract: `create_in`/`open_in` use the
/// default [`TreeOptions`] (`open` re-reads node size and split strategy
/// from the superblock regardless, so a tree created with custom options
/// re-opens faithfully).
impl pmindex::PersistentIndex for FastFairTree {
    fn create_in(pool: Arc<Pool>) -> Result<Self, IndexError> {
        FastFairTree::create(pool, TreeOptions::new())
    }
    fn open_in(pool: Arc<Pool>, meta: PmOffset) -> Result<Self, IndexError> {
        FastFairTree::open(pool, meta, TreeOptions::new())
    }
    fn superblock(&self) -> PmOffset {
        self.meta_offset()
    }

    /// Walks every level chain and returns the whole tree — nodes,
    /// limbo-held retirees, superblock and (for the logging strategy) the
    /// undo buffer — to the pool's free list. Caller guarantees exclusive
    /// access; the shard router defers this call through its epoch domain
    /// so it runs only after every reader of the evacuated index is gone.
    fn reclaim_storage(&self) -> usize {
        // Limbo first: merge-retired nodes are no longer on any chain.
        let mut freed = self.epoch.flush();
        let mut seen = std::collections::BTreeSet::new();
        for level in (0..=self.height()).rev() {
            for off in self.level_chain(level) {
                if seen.insert(off) {
                    self.pool.free(off, u64::from(self.node_size));
                    freed += 1;
                }
            }
        }
        if self.opts.split == SplitStrategy::Logging {
            let area = self.pool.load_u64(self.meta + META_LOG_AREA);
            if area != NULL_OFFSET {
                self.pool.free(area, 8 + u64::from(self.node_size));
                freed += 1;
            }
        }
        self.pool.free(self.meta, 64);
        freed + 1
    }
}

impl Drop for FastFairTree {
    fn drop(&mut self) {
        // The handle is going away, so no reader of *this* handle can still
        // hold references into limbo-held nodes; give any blocks online
        // reclamation has not yet collected back to the pool for the next
        // tree (or table) sharing it.
        self.reclaim_retired();
    }
}

impl PmIndex for FastFairTree {
    fn insert(&self, key: Key, value: Value) -> Result<Option<Value>, IndexError> {
        pmindex::check_value(value)?;
        let _pin = self.epoch.pin();
        crate::insert::tree_insert(self, key, value)
    }

    fn update(&self, key: Key, value: Value) -> Result<Option<Value>, IndexError> {
        pmindex::check_value(value)?;
        let _pin = self.epoch.pin();
        crate::insert::tree_update(self, key, value)
    }

    fn get(&self, key: Key) -> Option<Value> {
        let _pin = self.epoch.pin();
        stats::timed(stats::Phase::Search, || self.get_impl(key))
    }

    fn remove(&self, key: Key) -> bool {
        let _pin = self.epoch.pin();
        crate::delete::tree_remove(self, key)
    }

    fn cursor(&self) -> Box<dyn Cursor + '_> {
        Box::new(TreeCursor::new(self))
    }

    fn len(&self) -> usize {
        let mut n = 0;
        self.for_each(|_, _| n += 1);
        n
    }

    fn is_empty(&self) -> bool {
        let mut c = TreeCursor::new(self);
        Cursor::next(&mut c).is_none()
    }

    fn range(&self, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) {
        crate::scan::tree_range(self, lo, hi, out);
    }

    fn bulk_load(
        &self,
        items: &mut dyn Iterator<Item = (Key, Value)>,
    ) -> Result<usize, IndexError> {
        let _pin = self.epoch.pin();
        self.bulk_load_sorted(items)
    }

    fn name(&self) -> &'static str {
        self.name
    }
}
