//! Range scans over the leaf chain.
//!
//! A range scan descends to the leaf covering the lower bound, then walks
//! right through the sibling chain reading each leaf with the lock-free
//! protocol. Two tolerance rules come from the paper:
//!
//! * a key may appear twice when the scan crosses a half-finished FAIR
//!   split — the node and its fresh sibling form a "virtual single node"
//!   with a duplicated upper half (Fig. 2). The scan detects this exactly
//!   as the paper describes ("the order of keys is incorrect when reaching
//!   node B") and drops the duplicates with a monotonicity filter;
//! * a leaf may be revisited via an old sibling pointer after a concurrent
//!   split; the same filter handles it.

use pmem::NULL_OFFSET;
use pmindex::{Key, Value};

use crate::lock::ReadGuard;
use crate::search::read_leaf_entries;
use crate::tree::FastFairTree;

/// Appends all `(key, value)` with `lo <= key < hi` to `out`, ascending.
pub(crate) fn tree_range(tree: &FastFairTree, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) {
    if lo >= hi {
        return;
    }
    let mut off = tree.find_leaf(lo);
    let mut last: Option<Key> = None;
    while off != NULL_OFFSET {
        let leaf = tree.node(off);
        let entries = if tree.options().leaf_locks {
            let _g = ReadGuard::lock(&tree.pool, leaf.lock_word_off());
            read_leaf_entries(tree, leaf)
        } else {
            read_leaf_entries(tree, leaf)
        };
        for (k, v) in entries {
            if k >= hi {
                return;
            }
            if k >= lo && last.is_none_or(|l| k > l) {
                out.push((k, v));
                last = Some(k);
            }
        }
        off = leaf.sibling();
        if off != NULL_OFFSET {
            tree.node(off).charge_hop();
        }
    }
}
