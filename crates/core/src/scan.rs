//! Streaming range scans over the leaf chain: the lock-free [`TreeCursor`].
//!
//! The cursor is the FAST+FAIR instantiation of the shared
//! [`pmindex::chain::LeafChainCursor`]: the drain loop, lower-bound
//! filter and split-duplicate monotonicity filter live in `pmindex`; this
//! module supplies only the per-leaf hook. Three tolerance rules come
//! from the paper:
//!
//! * an in-flight FAST shift is detected by the leaf's switch counter: the
//!   per-leaf read retries until it observes a quiescent direction, so a
//!   torn view of a shifting node is never emitted;
//! * a key may appear twice when the scan crosses a half-finished FAIR
//!   split — the node and its fresh sibling form a "virtual single node"
//!   with a duplicated upper half (Fig. 2). The shared monotonicity filter
//!   drops the duplicates, exactly as the paper describes ("the order of
//!   keys is incorrect when reaching node B");
//! * a leaf may be revisited via an old sibling pointer after a concurrent
//!   split; the same filter handles it.
//!
//! The sibling pointer is read *after* the leaf's entries so that a split
//! racing with the read cannot hide the moved upper half: either the
//! entries still contain it, or the freshly linked sibling does.

use pmem::{PmOffset, NULL_OFFSET};
use pmindex::chain::{LeafChain, LeafChainCursor};
use pmindex::{Cursor, Key, Value};

use crate::lock::ReadGuard;
use crate::search::read_leaf_entries;
use crate::tree::FastFairTree;

/// The per-leaf read hook: lock-free leaf snapshot (taking the leaf read
/// latch only in the `FAST+FAIR+LeafLock` variant), sibling read after
/// the entries, pointer-chase latency charged per hop.
///
/// The epoch guard pins the cursor's whole lifetime: the cursor saves the
/// next leaf's offset between [`Cursor::next`] calls, and the pin is what
/// keeps a concurrently merged-away (retired) leaf from being recycled —
/// and its block reused — under the cursor's feet. The cost is that a
/// long-lived cursor stalls reclamation, never correctness.
struct TreeChain<'a> {
    tree: &'a FastFairTree,
    _pin: epoch::Guard,
}

impl LeafChain for TreeChain<'_> {
    type Leaf = PmOffset;

    fn locate(&self, target: Key) -> PmOffset {
        self.tree.find_leaf(target)
    }

    fn first(&self) -> PmOffset {
        self.tree.leftmost_leaf()
    }

    fn read(&self, off: PmOffset, buf: &mut Vec<(Key, Value)>) -> Option<PmOffset> {
        let leaf = self.tree.node(off);
        let entries = if self.tree.options().leaf_locks {
            let _g = ReadGuard::lock(self.tree.pool(), leaf.lock_word_off());
            read_leaf_entries(self.tree, leaf)
        } else {
            read_leaf_entries(self.tree, leaf)
        };
        buf.extend(entries);
        // Read the sibling only after the entries (see module docs).
        let sib = leaf.sibling();
        if sib == NULL_OFFSET {
            None
        } else {
            self.tree.node(sib).charge_hop();
            Some(sib)
        }
    }
}

/// A streaming, lock-free cursor over a [`FastFairTree`].
///
/// Created by [`pmindex::PmIndex::cursor`] (or [`TreeCursor::new`])
/// positioned before the smallest key; [`Cursor::seek`] repositions it in
/// O(height).
/// Holds no locks between calls (unless the tree runs in the
/// `FAST+FAIR+LeafLock` variant, where each per-leaf read takes the leaf's
/// read latch for its duration only).
pub struct TreeCursor<'a>(LeafChainCursor<TreeChain<'a>>);

impl<'a> TreeCursor<'a> {
    /// Opens a cursor positioned before the smallest key.
    pub fn new(tree: &'a FastFairTree) -> Self {
        TreeCursor(LeafChainCursor::new(TreeChain {
            tree,
            _pin: tree.epoch().pin(),
        }))
    }
}

impl Cursor for TreeCursor<'_> {
    fn seek(&mut self, target: Key) {
        self.0.seek(target)
    }

    fn next(&mut self) -> Option<(Key, Value)> {
        self.0.next()
    }

    fn seek_for_prev(&mut self, target: Key) {
        self.0.seek_for_prev(target)
    }

    fn prev(&mut self) -> Option<(Key, Value)> {
        self.0.prev()
    }
}

/// Appends all `(key, value)` with `lo <= key < hi` to `out`, ascending —
/// the materialized convenience path, driven by a [`TreeCursor`].
pub(crate) fn tree_range(tree: &FastFairTree, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) {
    if lo >= hi {
        return;
    }
    let mut c = TreeCursor::new(tree);
    c.seek(lo);
    while let Some((k, v)) = c.next() {
        if k >= hi {
            return;
        }
        out.push((k, v));
    }
}
