//! Streaming range scans over the leaf chain: the lock-free [`TreeCursor`].
//!
//! A cursor descends to the leaf covering its seek target, then walks right
//! through the sibling chain one leaf at a time, reading each leaf with the
//! lock-free protocol of Algorithm 3 (buffering at most one node's worth of
//! entries). Three tolerance rules come from the paper:
//!
//! * an in-flight FAST shift is detected by the leaf's switch counter: the
//!   per-leaf read retries until it observes a quiescent direction, so a
//!   torn view of a shifting node is never emitted;
//! * a key may appear twice when the scan crosses a half-finished FAIR
//!   split — the node and its fresh sibling form a "virtual single node"
//!   with a duplicated upper half (Fig. 2). The cursor detects this exactly
//!   as the paper describes ("the order of keys is incorrect when reaching
//!   node B") and drops the duplicates with a monotonicity filter;
//! * a leaf may be revisited via an old sibling pointer after a concurrent
//!   split; the same filter handles it.
//!
//! The sibling pointer is read *after* the leaf's entries so that a split
//! racing with the read cannot hide the moved upper half: either the
//! entries still contain it, or the freshly linked sibling does.

use pmem::{PmOffset, NULL_OFFSET};
use pmindex::{Cursor, Key, Value};

use crate::lock::ReadGuard;
use crate::search::read_leaf_entries;
use crate::tree::FastFairTree;

/// A streaming, lock-free cursor over a [`FastFairTree`].
///
/// Created by [`pmindex::PmIndex::cursor`] (or [`TreeCursor::new`])
/// positioned before the smallest key; [`Cursor::seek`] repositions it in
/// O(height).
/// Holds no locks between calls (unless the tree runs in the
/// `FAST+FAIR+LeafLock` variant, where each per-leaf read takes the leaf's
/// read latch for its duration only).
pub struct TreeCursor<'a> {
    tree: &'a FastFairTree,
    /// Next leaf to read; `None` = not positioned yet (the descent happens
    /// lazily on the first `next`, so a `cursor()` immediately followed by
    /// `seek` — the common range-scan shape — pays only one descent).
    next_leaf: Option<PmOffset>,
    /// Entries of the leaf currently being drained.
    buf: Vec<(Key, Value)>,
    pos: usize,
    /// Lower bound set by the last seek.
    bound: Key,
    /// Last key emitted: the monotonicity filter that drops the duplicated
    /// upper half of an in-flight FAIR split.
    last: Option<Key>,
}

impl<'a> TreeCursor<'a> {
    /// Opens a cursor positioned before the smallest key.
    pub fn new(tree: &'a FastFairTree) -> Self {
        TreeCursor {
            tree,
            next_leaf: None,
            buf: Vec::new(),
            pos: 0,
            bound: 0,
            last: None,
        }
    }

    /// Reads one leaf with the lock-free retry protocol (taking the leaf
    /// read latch only in the LeafLock variant).
    fn read_leaf(&self, leaf: crate::layout::NodeRef<'a>) -> Vec<(Key, Value)> {
        if self.tree.options().leaf_locks {
            let _g = ReadGuard::lock(self.tree.pool(), leaf.lock_word_off());
            read_leaf_entries(self.tree, leaf)
        } else {
            read_leaf_entries(self.tree, leaf)
        }
    }
}

impl Cursor for TreeCursor<'_> {
    fn seek(&mut self, target: Key) {
        self.bound = target;
        self.last = None;
        self.buf.clear();
        self.pos = 0;
        self.next_leaf = Some(self.tree.find_leaf(target));
    }

    fn next(&mut self) -> Option<(Key, Value)> {
        loop {
            while self.pos < self.buf.len() {
                let (k, v) = self.buf[self.pos];
                self.pos += 1;
                if k < self.bound {
                    continue;
                }
                if self.last.is_some_and(|l| k <= l) {
                    // Duplicate from a half-finished split (or a revisited
                    // leaf): already emitted, skip.
                    continue;
                }
                self.last = Some(k);
                return Some((k, v));
            }
            let off = match self.next_leaf {
                Some(NULL_OFFSET) => return None,
                Some(off) => off,
                // First use without a seek: descend to the leftmost leaf.
                None => self.tree.leftmost_leaf(),
            };
            let leaf = self.tree.node(off);
            self.buf = self.read_leaf(leaf);
            self.pos = 0;
            // Read the sibling only after the entries (see module docs).
            let sib = leaf.sibling();
            self.next_leaf = Some(sib);
            if sib != NULL_OFFSET {
                self.tree.node(sib).charge_hop();
            }
        }
    }
}

/// Appends all `(key, value)` with `lo <= key < hi` to `out`, ascending —
/// the materialized convenience path, driven by a [`TreeCursor`].
pub(crate) fn tree_range(tree: &FastFairTree, lo: Key, hi: Key, out: &mut Vec<(Key, Value)>) {
    if lo >= hi {
        return;
    }
    let mut c = TreeCursor::new(tree);
    c.seek(lo);
    while let Some((k, v)) = c.next() {
        if k >= hi {
            return;
        }
        out.push((k, v));
    }
}
